//! Criterion benchmarks: partitioning algorithms.

use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
use ccs_graph::RateAnalysis;
use ccs_partition::{annealing, dag_exact, dag_greedy, dag_local, fusion, multilevel, pipeline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline-partitioners");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let cfg = PipelineCfg {
            len: n,
            state: StateDist::Uniform(16, 128),
            max_q: 4,
            max_rate_scale: 3,
        };
        let g = gen::pipeline(&cfg, 42);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        group.bench_with_input(BenchmarkId::new("greedy-2m", n), &n, |b, _| {
            b.iter(|| pipeline::greedy_theorem5(&g, &ra, 256).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dp-optimal", n), &n, |b, _| {
            b.iter(|| pipeline::dp_min_bandwidth(&g, &ra, 512).unwrap())
        });
    }
    group.finish();
}

fn bench_dag_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag-partitioners");
    group.sample_size(15);
    let cfg = LayeredCfg {
        layers: 8,
        max_width: 8,
        density: 0.3,
        state: StateDist::Uniform(16, 96),
        max_q: 2,
    };
    let g = gen::layered(&cfg, 3);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let bound = 256u64.max(g.max_state());
    group.bench_function("greedy-topo", |b| {
        b.iter(|| dag_greedy::greedy_topo(&g, bound))
    });
    group.bench_function("greedy-affinity", |b| {
        b.iter(|| dag_greedy::greedy_affinity(&g, &ra, bound))
    });
    let p0 = dag_greedy::greedy_topo(&g, bound);
    group.bench_function("local-refine", |b| {
        b.iter(|| dag_local::refine(&g, &ra, bound, &p0, 8))
    });
    group.finish();

    // Exact solver on its feasible scale.
    let mut group = c.benchmark_group("dag-exact");
    group.sample_size(10);
    for nodes in [10usize, 12, 14] {
        // Find a seed yielding the requested node count.
        let mut graph = None;
        for seed in 0..500u64 {
            let cfg = LayeredCfg {
                layers: 3,
                max_width: 4,
                density: 0.3,
                state: StateDist::Uniform(8, 48),
                max_q: 2,
            };
            let g = gen::layered(&cfg, seed);
            if g.node_count() == nodes {
                graph = Some(g);
                break;
            }
        }
        let Some(g) = graph else { continue };
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let bound = 3 * 64u64.max(g.max_state());
        group.bench_with_input(BenchmarkId::new("ideal-dp", nodes), &nodes, |b, _| {
            b.iter(|| dag_exact::min_bandwidth_exact(&g, &ra, bound).unwrap())
        });
    }
    group.finish();
}

fn bench_metaheuristics(c: &mut Criterion) {
    let cfg = LayeredCfg {
        layers: 8,
        max_width: 8,
        density: 0.3,
        state: StateDist::Uniform(16, 96),
        max_q: 2,
    };
    let g = gen::layered(&cfg, 3);
    let ra = RateAnalysis::analyze_single_io(&g).unwrap();
    let bound = 256u64.max(g.max_state());
    let p0 = dag_local::refine(&g, &ra, bound, &dag_greedy::greedy_topo(&g, bound), 8);

    let mut group = c.benchmark_group("metaheuristics");
    group.sample_size(10);
    group.bench_function("anneal-4k-steps", |b| {
        b.iter(|| annealing::anneal(&g, &ra, bound, &p0, &annealing::AnnealCfg::default()))
    });
    group.bench_function("multilevel", |b| {
        b.iter(|| multilevel::multilevel(&g, &ra, bound, &multilevel::MultilevelCfg::default()))
    });
    group.bench_function("fuse", |b| {
        b.iter(|| fusion::fuse(&g, &ra, &p0).unwrap().graph.node_count())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_partitioners,
    bench_dag_partitioners,
    bench_metaheuristics
);
criterion_main!(benches);
