//! Minimal argument parsing: positionals plus `--key value` flags.

use std::collections::HashMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Args {
    pub positionals: Vec<String>,
    pub flags: HashMap<String, String>,
    /// Bare switches (`--json`).
    pub switches: Vec<String>,
}

/// Argument errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgError {
    MissingValue(String),
    BadNumber { flag: String, value: String },
    MissingPositional(&'static str),
    MissingFlag(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::BadNumber { flag, value } => {
                write!(f, "flag --{flag}: '{value}' is not a number")
            }
            ArgError::MissingPositional(name) => {
                write!(f, "missing argument: {name}")
            }
            ArgError::MissingFlag(name) => write!(f, "missing flag: --{name}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Switches that never take a value.
const SWITCHES: &[&str] = &[
    "json",
    "help",
    "pin-cores",
    "counters",
    "segment-counters",
    "serial",
    "first-touch",
    "per-worker-warmup",
    "trace",
    "adapt",
    "fused",
    "no-counters",
    "check",
    "history",
    "no-append",
];

impl Args {
    /// Parse raw arguments (excluding `argv[0]` and the subcommand).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                    args.flags.insert(name.to_string(), value);
                }
            } else if let Some(name) = a.strip_prefix("-o") {
                // `-o path` or `-opath`
                let value = if name.is_empty() {
                    iter.next()
                        .ok_or_else(|| ArgError::MissingValue("o".into()))?
                } else {
                    name.to_string()
                };
                args.flags.insert("out".into(), value);
            } else {
                args.positionals.push(a);
            }
        }
        Ok(args)
    }

    pub fn positional(&self, i: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positionals
            .get(i)
            .map(|s| s.as_str())
            .ok_or(ArgError::MissingPositional(name))
    }

    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    pub fn required_u64(&self, name: &'static str) -> Result<u64, ArgError> {
        let v = self.flag(name).ok_or(ArgError::MissingFlag(name))?;
        v.parse().map_err(|_| ArgError::BadNumber {
            flag: name.to_string(),
            value: v.to_string(),
        })
    }

    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadNumber {
                flag: name.to_string(),
                value: v.to_string(),
            }),
        }
    }

    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn mixed_positionals_and_flags() {
        let a = parse(&["graph.json", "--m", "1024", "--b", "16", "--json"]);
        assert_eq!(a.positional(0, "graph").unwrap(), "graph.json");
        assert_eq!(a.required_u64("m").unwrap(), 1024);
        assert_eq!(a.u64_or("b", 8).unwrap(), 16);
        assert_eq!(a.u64_or("missing", 7).unwrap(), 7);
        assert!(a.has("json"));
        assert!(!a.has("help"));
    }

    #[test]
    fn output_flag_forms() {
        let a = parse(&["-o", "out.json"]);
        assert_eq!(a.flag("out"), Some("out.json"));
        let b = parse(&["-oout.json"]);
        assert_eq!(b.flag("out"), Some("out.json"));
    }

    #[test]
    fn missing_value_is_error() {
        let err = Args::parse(vec!["--m".to_string()]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("m".into()));
    }

    #[test]
    fn bad_number_reported() {
        let a = parse(&["--m", "abc"]);
        assert!(matches!(
            a.required_u64("m"),
            Err(ArgError::BadNumber { .. })
        ));
    }

    #[test]
    fn missing_positional_and_flag() {
        let a = parse(&[]);
        assert_eq!(
            a.positional(0, "graph").unwrap_err(),
            ArgError::MissingPositional("graph")
        );
        assert_eq!(a.required_u64("m").unwrap_err(), ArgError::MissingFlag("m"));
    }
}
