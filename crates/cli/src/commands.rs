//! The CLI subcommands.

use crate::args::Args;
use ccs_cachesim::CacheParams;
use ccs_core::compare::{compare_schedulers, format_table};
use ccs_core::report::Report;
use ccs_core::{Horizon, Planner, Strategy};
use ccs_exec::RunConfig;
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_topo::{format_cpulist, TopoSpec, Topology};
use std::error::Error;

type CliResult = Result<String, Box<dyn Error>>;

/// Dispatch a subcommand; returns the text to print.
pub fn run(cmd: &str, args: &Args) -> CliResult {
    match cmd {
        "gen" => gen(args),
        "analyze" => analyze(args),
        "partition" => partition(args),
        "simulate" => simulate(args),
        "run-dag" => run_dag(args),
        "topo" => topo_cmd(args),
        "compare" => compare(args),
        "autotune" => autotune_cmd(args),
        "fuse" => fuse_cmd(args),
        "dot" => dot(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage()).into()),
    }
}

pub fn usage() -> String {
    "\
ccs — cache-conscious scheduling of streaming applications (SPAA 2012)

USAGE:
  ccs gen pipeline --len N --state S [-o FILE]
  ccs gen layered  --layers N --width W [--max-q Q] [-o FILE]
  ccs gen app NAME [-o FILE]               (see `ccs gen app list`)
  ccs analyze FILE
  ccs partition FILE --m M [--b B] [--strategy greedy2m|dp|dag|exact]
  ccs simulate FILE --m M [--b B] [--outputs T] [--json]
  ccs run-dag  FILE --m M [--b B] [--workers N] [--rounds R]
               [--placement rr|greedy|llc] [--topo NxCxK | --topo-from DUMP]
               [--pin-cores] [--counters] [--strategy ...] [--json]
               (real multicore execution with segment-affine workers;
                llc placement + pinning use the machine topology;
                --counters samples hardware cache counters per worker)
  ccs topo [--topo NxCxK | --from DUMP] [--json]
               (print the discovered, synthetic, or replayed machine
                topology plus perf-counter availability; the --json dump
                is what --from / --topo-from replay)
  ccs compare FILE --m M [--b B] [--outputs T]
  ccs autotune FILE --m M [--b B] [--outputs T]
  ccs fuse FILE --m M [--b B] [-o FILE]       (partition, then fuse)
  ccs dot FILE

Sizes are in words (one stream item = one word); M is the cache size,
B the block size. Graphs are StreamGraph JSON (produced by `ccs gen`)."
        .to_string()
}

fn load(path: &str) -> Result<StreamGraph, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let g: StreamGraph = serde_json::from_str(&text)
        .map_err(|e| format!("{path} is not a StreamGraph JSON: {e}"))?;
    Ok(g)
}

fn emit(args: &Args, content: String) -> CliResult {
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, &content)?;
            Ok(format!("wrote {path}"))
        }
        None => Ok(content),
    }
}

fn gen(args: &Args) -> CliResult {
    let kind = args.positional(0, "kind (pipeline|layered|app)")?;
    let graph = match kind {
        "pipeline" => {
            let len = args.u64_or("len", 16)? as usize;
            let state = args.u64_or("state", 128)?;
            let max_q = args.u64_or("max-q", 1)?;
            if max_q <= 1 {
                ccs_graph::gen::pipeline_uniform(len, state)
            } else {
                ccs_graph::gen::pipeline(
                    &ccs_graph::gen::PipelineCfg {
                        len,
                        state: ccs_graph::gen::StateDist::Fixed(state),
                        max_q,
                        max_rate_scale: args.u64_or("rate-scale", 2)?,
                    },
                    args.u64_or("seed", 0)?,
                )
            }
        }
        "layered" => ccs_graph::gen::layered(
            &ccs_graph::gen::LayeredCfg {
                layers: args.u64_or("layers", 4)? as usize,
                max_width: args.u64_or("width", 4)? as usize,
                density: 0.3,
                state: ccs_graph::gen::StateDist::Uniform(
                    args.u64_or("state-min", 32)?,
                    args.u64_or("state-max", 128)?,
                ),
                max_q: args.u64_or("max-q", 1)?,
            },
            args.u64_or("seed", 0)?,
        ),
        "app" => {
            let name = args.positional(1, "app name")?;
            if name == "list" {
                let names: Vec<String> = ccs_apps::suite()
                    .into_iter()
                    .map(|a| format!("  {:<12} {}", a.name, a.description))
                    .collect();
                return Ok(format!("available apps:\n{}", names.join("\n")));
            }
            ccs_apps::suite()
                .into_iter()
                .find(|a| a.name == name)
                .ok_or_else(|| format!("unknown app '{name}' (try `ccs gen app list`)"))?
                .graph
        }
        other => return Err(format!("unknown generator '{other}'").into()),
    };
    emit(args, serde_json::to_string_pretty(&graph)?)
}

fn analyze(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let ra = RateAnalysis::analyze_single_io(&g)?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "nodes        : {}", g.node_count());
    let _ = writeln!(out, "edges        : {}", g.edge_count());
    let _ = writeln!(out, "total state  : {} words", g.total_state());
    let _ = writeln!(out, "max state    : {} words", g.max_state());
    let _ = writeln!(out, "pipeline     : {}", g.is_pipeline());
    let _ = writeln!(out, "homogeneous  : {}", g.is_homogeneous());
    let source = ra.source.expect("single source");
    let sink = ra.sink.expect("single sink");
    let _ = writeln!(out, "source       : {}", g.node(source).name);
    let _ = writeln!(out, "sink         : {}", g.node(sink).name);
    let _ = writeln!(out, "gain(sink)   : {}", ra.gain(sink));
    let q_str: Vec<String> = g
        .node_ids()
        .map(|v| format!("{}={}", g.node(v).name, ra.q(v)))
        .collect();
    let _ = writeln!(out, "repetitions  : {}", q_str.join(" "));
    Ok(out)
}

fn strategy_of(args: &Args) -> Result<Strategy, Box<dyn Error>> {
    Ok(match args.flag("strategy") {
        None | Some("auto") => Strategy::Auto,
        Some("greedy2m") => Strategy::PipelineGreedy2M,
        Some("dp") => Strategy::PipelineDp,
        Some("dag") => Strategy::DagGreedyRefined,
        Some("exact") => Strategy::DagExact,
        Some(other) => return Err(format!("unknown strategy '{other}'").into()),
    })
}

fn params_of(args: &Args) -> Result<CacheParams, Box<dyn Error>> {
    let m = args.required_u64("m")?;
    let b = args.u64_or("b", 16)?;
    Ok(CacheParams::new(m, b))
}

fn partition(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let ra = RateAnalysis::analyze_single_io(&g)?;
    let planner = Planner::new(params_of(args)?).with_strategy(strategy_of(args)?);
    let (p, bw, used) = planner.partition(&g, &ra)?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "strategy   : {used}");
    let _ = writeln!(out, "components : {}", p.num_components());
    let _ = writeln!(out, "bandwidth  : {bw} items/input");
    let _ = writeln!(out, "max state  : {} words", p.max_component_state(&g));
    let _ = writeln!(out, "max degree : {}", p.max_component_degree(&g));
    for (i, comp) in p.components().iter().enumerate() {
        let names: Vec<&str> = comp.iter().map(|&v| g.node(v).name.as_str()).collect();
        let _ = writeln!(
            out,
            "  [{i}] ({} words) {}",
            g.state_of(comp),
            names.join(", ")
        );
    }
    Ok(out)
}

fn simulate(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let params = params_of(args)?;
    let planner = Planner::new(params).with_strategy(strategy_of(args)?);
    let outputs = args.u64_or("outputs", 1000)?;
    let plan = planner.plan(&g, Horizon::SinkFirings(outputs))?;
    let eval = planner.evaluate(&g, &plan)?;
    let report = Report::new(&g, params, &plan, &eval);
    if args.has("json") {
        Ok(report.to_json())
    } else {
        Ok(format!(
            "strategy {} | {} components | bandwidth {:.4} items/input\n\
             {} misses ({} interior) for {} outputs = {:.4} misses/output",
            report.strategy,
            report.components,
            report.bandwidth,
            report.misses,
            report.interior_misses,
            report.outputs,
            report.misses_per_output,
        ))
    }
}

/// Topology from `--topo NxCxK` (synthetic), `--topo-from`/`--from`
/// (replay of a `ccs topo --json` dump), or `None` for host discovery.
fn topo_of(args: &Args) -> Result<Option<Topology>, Box<dyn Error>> {
    let from = args.flag("topo-from").or_else(|| args.flag("from"));
    match (args.flag("topo"), from) {
        (Some(_), Some(_)) => Err("--topo and --topo-from/--from are mutually exclusive".into()),
        (Some(spec), None) => Ok(Some(Topology::synthetic(&spec.parse::<TopoSpec>()?))),
        (None, Some(path)) => Ok(Some(load_topo_dump(path)?)),
        (None, None) => Ok(None),
    }
}

/// Rebuild a machine tree from a `ccs topo --json` dump: each entry of
/// the `clusters` array is one LLC cluster, `(os_node, cpus)` — enough
/// to replay another machine's topology here for placement inspection.
fn load_topo_dump(path: &str) -> Result<Topology, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not JSON: {e}"))?;
    let serde_json::Value::Array(clusters) = &v["clusters"] else {
        return Err(format!("{path}: no `clusters` array (want a `ccs topo --json` dump)").into());
    };
    let mut groups = Vec::with_capacity(clusters.len());
    for c in clusters {
        // `os_node` is the authoritative id; older dumps may only have
        // the dense `node` index, which replays equivalently.
        let node = c["os_node"]
            .as_u64()
            .or_else(|| c["node"].as_u64())
            .ok_or_else(|| format!("{path}: cluster without os_node/node"))?
            as usize;
        let serde_json::Value::Array(cpu_vals) = &c["cpus"] else {
            return Err(format!("{path}: cluster without a cpus array").into());
        };
        let cpus = cpu_vals
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| format!("{path}: non-integer cpu id"))
            })
            .collect::<Result<Vec<usize>, String>>()?;
        groups.push((node, cpus));
    }
    if groups.iter().all(|(_, cpus)| cpus.is_empty()) {
        return Err(format!("{path}: dump describes no cpus").into());
    }
    Ok(Topology::from_replay(groups))
}

fn run_dag(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let planner = Planner::new(params_of(args)?).with_strategy(strategy_of(args)?);
    let workers = args.u64_or("workers", 2)?.max(1) as usize;
    let rounds = args.u64_or("rounds", 8)?;
    let placement = match args.flag("placement") {
        None => ccs_exec::Placement::RoundRobin,
        Some(name) => ccs_exec::Placement::parse(name)
            .ok_or_else(|| format!("unknown placement '{name}' (rr|greedy|llc)"))?,
    };
    let counters = args.has("counters");
    let mut cfg = RunConfig::new(workers)
        .with_placement(placement)
        .with_pinning(args.has("pin-cores"))
        .with_counters(counters);
    if let Some(topo) = topo_of(args)? {
        cfg = cfg.with_topology(topo);
    }
    let inst = ccs_runtime::Instance::synthetic(g);
    let pr = planner.plan_and_run_parallel(inst, rounds, &cfg)?;
    let stats = &pr.stats;
    let totals = stats.counter_totals();
    if args.has("json") {
        let workers_json: Vec<serde_json::Value> = stats
            .workers
            .iter()
            .map(|w| {
                serde_json::json!({
                    "worker": w.worker,
                    "segments": w.segments,
                    "firings": w.firings,
                    "batches": w.batches,
                    "stalls": w.stalls,
                    "stall_ms": w.stall_time.as_secs_f64() * 1e3,
                    "busy_ms": w.busy.as_secs_f64() * 1e3,
                    "pinned_cpu": w.pinned_cpu,
                    "counters": w.counters.as_ref().map(|s| s.to_json(None)),
                })
            })
            .collect();
        // Counter tri-state: "off" (not requested), "unavailable"
        // (requested, nothing opened anywhere — containers, paranoid),
        // or the aggregated readings.
        let counters_json = if !counters {
            serde_json::Value::String("off".into())
        } else {
            match &totals {
                // Per-worker samples get no item denominator (items are
                // a sink-level quantity), so only the aggregate carries
                // llc_misses_per_item.
                Some(t) => t.to_json(Some(stats.run.sink_items)),
                None => serde_json::Value::String("unavailable".into()),
            }
        };
        return Ok(serde_json::to_string_pretty(&serde_json::json!({
            "strategy": pr.strategy_used,
            "placement": placement.name(),
            "pin_cores": cfg.pin_cores,
            "pinned_workers": stats.pinned_workers(),
            "segments": stats.segments,
            "workers": workers,
            "granularity_t": stats.t,
            "rounds": stats.rounds,
            "bandwidth": pr.bandwidth.to_f64(),
            "firings": stats.run.firings,
            "sink_items": stats.run.sink_items,
            "wall_ms": stats.run.wall.as_secs_f64() * 1e3,
            "stall_ms": stats.total_stall_time().as_secs_f64() * 1e3,
            "items_per_sec": stats.items_per_sec(),
            "digest": format!("{:016x}", stats.run.digest.unwrap_or(0)),
            "counters": counters_json,
            "counted_workers": stats.counted_workers(),
            "per_worker": workers_json,
        }))?);
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "strategy {} | placement {} | {} segments on {} workers{} | T = {}",
        pr.strategy_used,
        placement.name(),
        stats.segments,
        workers,
        if cfg.pin_cores {
            format!(" ({} pinned)", stats.pinned_workers())
        } else {
            String::new()
        },
        stats.t
    );
    let _ = writeln!(
        out,
        "{} firings, {} sink items in {:.2} ms = {:.3} M items/s | digest {:016x}",
        stats.run.firings,
        stats.run.sink_items,
        stats.run.wall.as_secs_f64() * 1e3,
        stats.items_per_sec() / 1e6,
        stats.run.digest.unwrap_or(0),
    );
    if counters {
        match &totals {
            Some(t) => {
                use ccs_perf::CounterKind as K;
                let _ = writeln!(
                    out,
                    "counters ({} worker{}): llc misses {}{} | mpki {} | ipc {}{}",
                    stats.counted_workers(),
                    if stats.counted_workers() == 1 {
                        ""
                    } else {
                        "s"
                    },
                    t.get(K::LlcMisses).map_or("n/a".into(), |v| v.to_string()),
                    stats
                        .llc_misses_per_item()
                        .map_or(String::new(), |v| format!(" ({v:.3}/item)")),
                    t.mpki().map_or("n/a".into(), |v| format!("{v:.3}")),
                    t.ipc().map_or("n/a".into(), |v| format!("{v:.2}")),
                    if t.multiplexed() {
                        " | multiplexed (scaled)"
                    } else {
                        ""
                    },
                );
            }
            None => {
                let probe = ccs_perf::probe();
                let _ = writeln!(
                    out,
                    "counters: unavailable ({})",
                    probe
                        .reason
                        .as_deref()
                        .unwrap_or("no worker opened a group"),
                );
            }
        }
    }
    for w in &stats.workers {
        let _ = writeln!(
            out,
            "  worker {}{}: segments {:?}, {} firings, {} batches, {} stalls ({:.2} ms), busy {:.2} ms{}",
            w.worker,
            match w.pinned_cpu {
                Some(cpu) => format!(" @cpu{cpu}"),
                None => String::new(),
            },
            w.segments,
            w.firings,
            w.batches,
            w.stalls,
            w.stall_time.as_secs_f64() * 1e3,
            w.busy.as_secs_f64() * 1e3,
            w.counters
                .as_ref()
                .and_then(|s| s.get(ccs_perf::CounterKind::LlcMisses))
                .map_or(String::new(), |m| format!(", {m} llc misses")),
        );
    }
    Ok(out)
}

fn topo_cmd(args: &Args) -> CliResult {
    let topo = match topo_of(args)? {
        Some(t) => t,
        None => Topology::discover(),
    };
    let probe = ccs_perf::probe();
    if args.has("json") {
        let clusters: Vec<serde_json::Value> = topo
            .clusters()
            .iter()
            .map(|c| {
                let cpus: Vec<usize> = c.cores.iter().map(|&i| topo.core(i).cpu).collect();
                serde_json::json!({
                    "node": c.node,
                    "os_node": topo.node(c.node).os_node,
                    "cpus": cpus,
                    "cpulist": format_cpulist(&cpus),
                })
            })
            .collect();
        return Ok(serde_json::to_string_pretty(&serde_json::json!({
            "source": topo.source().name(),
            "nodes": topo.node_count(),
            "llc_clusters": topo.cluster_count(),
            "cores": topo.core_count(),
            "clusters": clusters,
            "perf_counters": serde_json::json!({
                "available": probe.available,
                "events": probe.events,
                "reason": probe.reason,
            }),
        }))?);
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}", topo.summary());
    match &probe.reason {
        None => {
            let _ = writeln!(
                out,
                "perf counters: available ({})",
                probe.events.join(", ")
            );
        }
        Some(reason) => {
            let _ = writeln!(out, "perf counters: unavailable ({reason})");
        }
    }
    for (n, node) in topo.nodes().iter().enumerate() {
        if node.os_node == n {
            let _ = writeln!(out, "node {n}:");
        } else {
            // Dense index for placement math, OS id for numactl/lscpu.
            let _ = writeln!(out, "node {n} (os node {}):", node.os_node);
        }
        for &ci in &node.clusters {
            let cpus: Vec<usize> = topo
                .cluster(ci)
                .cores
                .iter()
                .map(|&i| topo.core(i).cpu)
                .collect();
            let _ = writeln!(out, "  llc {ci}: cpus {}", format_cpulist(&cpus));
        }
    }
    Ok(out)
}

fn compare(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let params = params_of(args)?;
    let outputs = args.u64_or("outputs", 1000)?;
    let rows = compare_schedulers(&g, params, outputs);
    if rows.is_empty() {
        return Err("no scheduler could run (is the graph rate matched?)".into());
    }
    Ok(format_table("scheduler comparison", &rows))
}

fn autotune_cmd(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let params = params_of(args)?;
    let planner = Planner::new(params);
    let outputs = args.u64_or("outputs", 1000)?;
    let trial = (outputs / 4).max(50);
    let tuned = ccs_core::autotune::autotune(
        &planner,
        &g,
        Horizon::SinkFirings(trial),
        Horizon::SinkFirings(outputs),
    )?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>11} {:>11}",
        "strategy", "misses/output", "components", "bandwidth"
    );
    for t in &tuned.trials {
        let _ = writeln!(
            out,
            "{:<22} {:>14.4} {:>11} {:>11.3}",
            t.strategy_used, t.misses_per_output, t.components, t.bandwidth
        );
    }
    let _ = writeln!(out, "winner: {}", tuned.plan.strategy_used);
    Ok(out)
}

fn fuse_cmd(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let ra = RateAnalysis::analyze_single_io(&g)?;
    let planner = Planner::new(params_of(args)?).with_strategy(strategy_of(args)?);
    let (p, bw, used) = planner.partition(&g, &ra)?;
    let fused = ccs_partition::fusion::fuse(&g, &ra, &p).ok_or("partition is not well ordered")?;
    let summary = format!(
        "fused {} modules into {} via {used} (bandwidth {bw})",
        g.node_count(),
        fused.graph.node_count()
    );
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, serde_json::to_string_pretty(&fused.graph)?)?;
            Ok(format!("{summary}\nwrote {path}"))
        }
        None => Ok(format!(
            "{summary}\n{}",
            serde_json::to_string_pretty(&fused.graph)?
        )),
    }
}

fn dot(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    emit(args, ccs_graph::dot::to_dot(&g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("ccs-cli-test-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn gen_analyze_roundtrip() {
        let path = tmp("g1.json");
        let out = run(
            "gen",
            &args(&["pipeline", "--len", "8", "--state", "64", "-o", &path]),
        )
        .unwrap();
        assert!(out.contains("wrote"));
        let report = run("analyze", &args(&[&path])).unwrap();
        assert!(report.contains("nodes        : 8"));
        assert!(report.contains("pipeline     : true"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn gen_app_and_partition() {
        let path = tmp("g2.json");
        run("gen", &args(&["app", "fm-radio", "-o", &path])).unwrap();
        let out = run("partition", &args(&[&path, "--m", "1088", "--b", "16"])).unwrap();
        assert!(out.contains("components"));
        assert!(out.contains("bandwidth"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn simulate_json_output() {
        let path = tmp("g3.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "12", "--state", "96", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "simulate",
            &args(&[&path, "--m", "1024", "--outputs", "200", "--json"]),
        )
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed["misses"].as_u64().unwrap() > 0);
        assert_eq!(parsed["graph_nodes"].as_u64().unwrap(), 12);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_text_and_json() {
        let path = tmp("g7.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "10", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "run-dag",
            &args(&[&path, "--m", "1024", "--workers", "2", "--rounds", "3"]),
        )
        .unwrap();
        assert!(out.contains("segments"), "{out}");
        assert!(out.contains("worker 0:"), "{out}");
        let out = run(
            "run-dag",
            &args(&[
                &path,
                "--m",
                "1024",
                "--workers",
                "2",
                "--rounds",
                "3",
                "--placement",
                "greedy",
                "--json",
            ]),
        )
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["workers"].as_u64(), Some(2));
        assert_eq!(parsed["placement"].as_str(), Some("comm-greedy"));
        assert!(parsed["items_per_sec"].as_f64().unwrap() > 0.0);
        assert!(run(
            "run-dag",
            &args(&[&path, "--m", "256", "--placement", "bogus"]),
        )
        .is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_llc_with_topology_and_pinning() {
        let path = tmp("g8.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "12", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let base = [&path, "--m", "1024", "--workers", "4", "--rounds", "2"];
        let mut with_llc: Vec<&str> = base.to_vec();
        with_llc.extend([
            "--placement",
            "llc",
            "--topo",
            "1x2x2",
            "--pin-cores",
            "--json",
        ]);
        let out = run("run-dag", &args(&with_llc)).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["placement"].as_str(), Some("llc"));
        assert_eq!(parsed["pin_cores"].as_bool(), Some(true));
        assert!(parsed["stall_ms"].as_f64().is_some());
        assert!(parsed["per_worker"][0]["stall_ms"].as_f64().is_some());
        let llc_digest = parsed["digest"].as_str().unwrap().to_string();
        // Same schedule length under the default placement: digests match.
        let mut plain: Vec<&str> = base.to_vec();
        plain.push("--json");
        let out = run("run-dag", &args(&plain)).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["digest"].as_str(), Some(llc_digest.as_str()));
        // Bad topology spec is an error.
        let mut bad: Vec<&str> = base.to_vec();
        bad.extend(["--topo", "0x1"]);
        assert!(run("run-dag", &args(&bad)).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_counters_tristate() {
        let path = tmp("g9.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "8", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let base = [&path, "--m", "1024", "--workers", "2", "--rounds", "2"];
        // Not requested: explicit "off".
        let mut plain: Vec<&str> = base.to_vec();
        plain.push("--json");
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&plain)).unwrap()).unwrap();
        assert_eq!(parsed["counters"].as_str(), Some("off"));
        let digest = parsed["digest"].as_str().unwrap().to_string();
        // Requested: either aggregated readings or the explicit
        // "unavailable" fallback — never absent, never a crash; and the
        // digest must be untouched by instrumentation.
        let mut counted: Vec<&str> = base.to_vec();
        counted.extend(["--counters", "--json"]);
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&counted)).unwrap()).unwrap();
        assert_eq!(parsed["digest"].as_str(), Some(digest.as_str()));
        let c = &parsed["counters"];
        if c.as_str() == Some("unavailable") {
            assert_eq!(parsed["counted_workers"].as_u64(), Some(0));
            assert!(parsed["per_worker"][0]["counters"].is_null());
        } else {
            // The object carries the headline metric (possibly null if
            // the LLC event didn't open on this machine).
            assert!(c["multiplexed"].as_bool().is_some(), "{c:?}");
            assert!(parsed["counted_workers"].as_u64().unwrap() > 0);
        }
        // Text mode mentions counters when requested.
        let mut text: Vec<&str> = base.to_vec();
        text.push("--counters");
        let out = run("run-dag", &args(&text)).unwrap();
        assert!(out.contains("counters"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn topo_dump_replays_on_another_machine() {
        // Dump a synthetic 2x2x2 box, then replay the dump and place
        // against it — the `--topo-from` path end to end.
        let dump = run("topo", &args(&["--topo", "2x2x2", "--json"])).unwrap();
        let path = tmp("topo-dump.json");
        std::fs::write(&path, &dump).unwrap();
        let out = run("topo", &args(&["--from", &path])).unwrap();
        assert!(
            out.contains("replay: 2 nodes x 4 llc clusters x 8 cores"),
            "{out}"
        );
        let parsed: serde_json::Value =
            serde_json::from_str(&run("topo", &args(&["--from", &path, "--json"])).unwrap())
                .unwrap();
        assert_eq!(parsed["source"].as_str(), Some("replay"));
        assert_eq!(parsed["cores"].as_u64(), Some(8));

        let g = tmp("g10.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "10", "--state", "64", "-o", &g]),
        )
        .unwrap();
        let out = run(
            "run-dag",
            &args(&[
                &g,
                "--m",
                "1024",
                "--workers",
                "4",
                "--placement",
                "llc",
                "--topo-from",
                &path,
                "--json",
            ]),
        )
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["placement"].as_str(), Some("llc"));
        // Mutually exclusive with --topo; garbage files are errors.
        assert!(run("topo", &args(&["--topo", "1x1x1", "--from", &path])).is_err());
        let bad = tmp("not-a-dump.json");
        std::fs::write(&bad, "{\"clusters\": 7}").unwrap();
        assert!(run("topo", &args(&["--from", &bad])).is_err());
        std::fs::remove_file(bad).ok();
        std::fs::remove_file(path).ok();
        std::fs::remove_file(g).ok();
    }

    #[test]
    fn topo_prints_synthetic_and_discovered() {
        let out = run("topo", &args(&["--topo", "2x2x2"])).unwrap();
        assert!(
            out.contains("synthetic: 2 nodes x 4 llc clusters x 8 cores"),
            "{out}"
        );
        assert!(out.contains("llc 0: cpus 0-1"), "{out}");
        let out = run("topo", &args(&["--topo", "2x2x2", "--json"])).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["source"].as_str(), Some("synthetic"));
        assert_eq!(parsed["cores"].as_u64(), Some(8));
        assert_eq!(parsed["clusters"][3]["node"].as_u64(), Some(1));
        // Host discovery always yields at least one core.
        let out = run("topo", &args(&["--json"])).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed["cores"].as_u64().unwrap() >= 1);
        assert!(run("topo", &args(&["--topo", "junk"])).is_err());
    }

    #[test]
    fn compare_prints_table() {
        let path = tmp("g4.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "16", "--state", "128", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "compare",
            &args(&[&path, "--m", "1024", "--outputs", "300"]),
        )
        .unwrap();
        assert!(out.contains("single-appearance"));
        assert!(out.contains("misses/output"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn app_list_and_errors() {
        let out = run("gen", &args(&["app", "list"])).unwrap();
        assert!(out.contains("fm-radio"));
        assert!(run("gen", &args(&["app", "nope"])).is_err());
        assert!(run("frobnicate", &args(&[])).is_err());
        assert!(run("help", &args(&[])).unwrap().contains("USAGE"));
    }

    #[test]
    fn autotune_and_fuse_commands() {
        let path = tmp("g6.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "16", "--state", "96", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "autotune",
            &args(&[&path, "--m", "1024", "--outputs", "300"]),
        )
        .unwrap();
        assert!(out.contains("winner:"), "{out}");

        let fused_path = tmp("g6-fused.json");
        let out = run("fuse", &args(&[&path, "--m", "1024", "-o", &fused_path])).unwrap();
        assert!(out.contains("fused 16 modules into"), "{out}");
        // Fused graph is loadable and smaller.
        let report = run("analyze", &args(&[&fused_path])).unwrap();
        assert!(report.contains("pipeline     : true"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(fused_path).ok();
    }

    #[test]
    fn dot_command() {
        let path = tmp("g5.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "3", "--state", "8", "-o", &path]),
        )
        .unwrap();
        let out = run("dot", &args(&[&path])).unwrap();
        assert!(out.starts_with("digraph"));
        std::fs::remove_file(path).ok();
    }
}
