//! The CLI subcommands.

use crate::args::Args;
use ccs_cachesim::CacheParams;
use ccs_core::compare::{compare_schedulers, format_table};
use ccs_core::report::Report;
use ccs_core::{Horizon, Planner, Strategy};
use ccs_exec::RunConfig;
use ccs_graph::{RateAnalysis, StreamGraph};
use ccs_topo::{format_cpulist, TopoSpec, Topology};
use std::error::Error;

type CliResult = Result<String, Box<dyn Error>>;

/// Dispatch a subcommand; returns the text to print.
pub fn run(cmd: &str, args: &Args) -> CliResult {
    match cmd {
        "gen" => gen(args),
        "analyze" => analyze(args),
        "partition" => partition(args),
        "simulate" => simulate(args),
        "run-dag" => run_dag(args),
        "trace" => trace_cmd(args),
        "sweep" => sweep_cmd(args),
        "bench" => bench_cmd(args),
        "topo" => topo_cmd(args),
        "report" => report_cmd(args),
        "compare" => compare(args),
        "autotune" => autotune_cmd(args),
        "fuse" => fuse_cmd(args),
        "dot" => dot(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage()).into()),
    }
}

pub fn usage() -> String {
    "\
ccs — cache-conscious scheduling of streaming applications (SPAA 2012)

USAGE:
  ccs gen pipeline --len N --state S [-o FILE]
  ccs gen layered  --layers N --width W [--max-q Q] [-o FILE]
  ccs gen app NAME [-o FILE]               (see `ccs gen app list`)
  ccs analyze FILE [--json] [-o FILE]
               (structural rate analysis of a StreamGraph; given a
                ccs-trace/v1 document instead, runs the bottleneck
                analysis — per-worker time breakdowns, stall blame per
                edge, ring occupancy, bottleneck ranking with the
                blocking chain, and mpki/stall-share drift — emitting a
                ccs-analysis/v1 document `ccs report` renders)
  ccs analyze FILE --m M [trace flags]
               (live mode: run the StreamGraph with tracing on — the
                same run `ccs trace` exports — and analyze it directly)
  ccs partition FILE --m M [--b B] [--strategy greedy2m|dp|dag|exact]
  ccs simulate FILE --m M [--b B] [--outputs T] [--json]
  ccs run-dag  FILE --m M [--b B] [--workers N] [--rounds R]
               [--placement rr|greedy|llc] [--topo NxCxK | --topo-from DUMP]
               [--pin-cores] [--counters] [--warmup K] [--segment-counters]
               [--stride S] [--per-worker-warmup] [--first-touch]
               [--trace] [--windows W] [--trace-cap C] [--adapt]
               [--fused] [--warn-residency R] [--strategy ...] [--json]
               (real multicore execution with segment-affine workers;
                llc placement + pinning use the machine topology;
                --counters samples hardware cache counters per worker,
                --warmup K discards the first K batches per segment so
                readings reflect steady state — exact epoch reset by
                default, --per-worker-warmup for the legacy reset —
                --segment-counters attributes misses to individual
                segments sampling every S-th batch, and --first-touch
                faults ring pages in from consumer workers; --trace
                records per-worker event timelines and --windows W
                closes a counter window every W batches; --adapt turns
                on the online drift controller (needs --windows >= 1),
                which migrates segments between workers mid-run while
                the output digest stays bit-identical; --fused runs
                batches through the fused hot path — bulk ring ops, a
                flat per-segment arena, software prefetch — with the
                digest again bit-identical (docs/HOTPATH.md);
                see docs/MEASUREMENT.md, docs/OBSERVABILITY.md, and
                docs/ADAPTIVE.md)
  ccs trace FILE --m M [--b B] [--workers N] [--rounds R] [--serial]
            [--windows W] [--trace-cap C] [--no-counters] [--warmup K]
            [--adapt]
            [--placement rr|greedy|llc] [--topo NxCxK] [--pin-cores]
            [--warn-residency R] [--strategy ...] [--json] [-o FILE]
               (run with event tracing on and export the merged
                per-worker timelines as Chrome trace-event JSON —
                load FILE in Perfetto (ui.perfetto.dev) or render the
                summary with `ccs report`; counter windows every W
                batches [default 1] annotate the timeline, degrading
                to timing-only without a PMU; stalls carry the blocking
                edge and ring occupancy is sampled at batch boundaries,
                so the export feeds `ccs analyze`; --adapt runs the
                online drift controller and its migration instants land
                on the timeline; --warn-residency sets the
                low-PMU-residency warning threshold baked into the
                document; see docs/OBSERVABILITY.md)
  ccs sweep [--spec FILE | --apps A,B --workers N,M --placements rr,llc
             --pin on|off|both [--serial] [--counters] [--segment-counters]
             [--warmup K] [--stride S] [--first-touch] [--per-worker-warmup]
             [--trace] [--windows W] [--adapt] [--fused] [--topo NxCxK]
             [--repeats R] [--rounds N] [--baseline LABEL]
             [--metrics m1,m2] [--name NAME] [--seed S] [--confidence C]
             [--warn-residency R]]
            [--json] [-o FILE]
               (declarative experiment grid: cells x interleaved repeats
                with digest-equivalence asserted across all cells, per-cell
                mean +/- stddev, and the declared pairwise paired deltas
                with bootstrap CIs under Benjamini-Hochberg correction;
                grid comes from a JSON spec file or from the flags;
                --adapt doubles every parallel cell with an adaptive
                twin (online segment migration; needs --windows >= 1);
                --fused doubles every cell with a fused-hot-path twin,
                so the digest assertion proves fused == classic;
                -o saves the ccs-sweep/v1 document `ccs report` renders)
  ccs bench [--repeats R] [--rounds N] [--apps A,B] [--store FILE]
            [--baseline FILE] [--tolerance T] [--timestamp T]
            [--check] [--no-append] [--fused] [--json] [-o FILE]
               (continuous performance tracking: run the canonical
                sweep — serial, rr/w2, llc/w2 with counters on — append
                a ccs-bench/v1 record to results/history/bench.ndjson
                [--store overrides], and judge it against the newest
                record with the same machine fingerprint (topology x
                counter availability x warmup x grid): per-metric
                paired bootstrap deltas under BH correction, classified
                regressed / improved / unchanged within a relative
                tolerance band (10% with a PMU, 25% timing-only;
                --tolerance overrides); --baseline compares against a
                specific history file, --check exits nonzero on any
                regression (the CI perf gate); --fused tracks the same
                grid through the fused hot path under its own
                fingerprint, so fused and classic histories never mix;
                see docs/BENCHMARKING.md)
  ccs topo [--topo NxCxK | --from DUMP] [--json]
               (print the discovered, synthetic, or replayed machine
                topology plus perf-counter availability; the --json dump
                is what --from / --topo-from replay)
  ccs report FILE
               (render a results document as text, dispatching on its
                schema: ccs-sweep/v1 — per-cell mean +/- stddev,
                per-segment attribution, and the BH-corrected comparison
                family, from `ccs sweep` and the e19..e22 binaries —
                ccs-trace/v1 — per-worker event/window summary with
                drop and PMU-residency warnings, from `ccs trace` —
                ccs-analysis/v1 — the bottleneck/drift analysis from
                `ccs analyze` — or ccs-bench/v1 — one bench history
                record; an NDJSON history file renders as the trend
                view)
  ccs report --history [FILE] [--last N]
               (per-metric trend over the last N bench records —
                sparkline and relative move, grouped by machine
                fingerprint; FILE defaults to the bench history store)
  ccs compare FILE --m M [--b B] [--outputs T]
  ccs autotune FILE --m M [--b B] [--outputs T]
  ccs fuse FILE --m M [--b B] [-o FILE]       (partition, then fuse)
  ccs dot FILE

Sizes are in words (one stream item = one word); M is the cache size,
B the block size. Graphs are StreamGraph JSON (produced by `ccs gen`)."
        .to_string()
}

fn load(path: &str) -> Result<StreamGraph, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let g: StreamGraph = serde_json::from_str(&text)
        .map_err(|e| format!("{path} is not a StreamGraph JSON: {e}"))?;
    Ok(g)
}

fn emit(args: &Args, content: String) -> CliResult {
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, &content)?;
            Ok(format!("wrote {path}"))
        }
        None => Ok(content),
    }
}

fn gen(args: &Args) -> CliResult {
    let kind = args.positional(0, "kind (pipeline|layered|app)")?;
    let graph = match kind {
        "pipeline" => {
            let len = args.u64_or("len", 16)? as usize;
            let state = args.u64_or("state", 128)?;
            let max_q = args.u64_or("max-q", 1)?;
            if max_q <= 1 {
                ccs_graph::gen::pipeline_uniform(len, state)
            } else {
                ccs_graph::gen::pipeline(
                    &ccs_graph::gen::PipelineCfg {
                        len,
                        state: ccs_graph::gen::StateDist::Fixed(state),
                        max_q,
                        max_rate_scale: args.u64_or("rate-scale", 2)?,
                    },
                    args.u64_or("seed", 0)?,
                )
            }
        }
        "layered" => ccs_graph::gen::layered(
            &ccs_graph::gen::LayeredCfg {
                layers: args.u64_or("layers", 4)? as usize,
                max_width: args.u64_or("width", 4)? as usize,
                density: 0.3,
                state: ccs_graph::gen::StateDist::Uniform(
                    args.u64_or("state-min", 32)?,
                    args.u64_or("state-max", 128)?,
                ),
                max_q: args.u64_or("max-q", 1)?,
            },
            args.u64_or("seed", 0)?,
        ),
        "app" => {
            let name = args.positional(1, "app name")?;
            if name == "list" {
                let names: Vec<String> = ccs_apps::suite()
                    .into_iter()
                    .map(|a| format!("  {:<12} {}", a.name, a.description))
                    .collect();
                return Ok(format!("available apps:\n{}", names.join("\n")));
            }
            ccs_apps::suite()
                .into_iter()
                .find(|a| a.name == name)
                .ok_or_else(|| format!("unknown app '{name}' (try `ccs gen app list`)"))?
                .graph
        }
        other => return Err(format!("unknown generator '{other}'").into()),
    };
    emit(args, serde_json::to_string_pretty(&graph)?)
}

/// `ccs analyze` — dispatch on content. A `ccs-trace/v1` document is
/// analyzed into a `ccs-analysis/v1` one (stall blame, ring occupancy,
/// bottleneck ranking, drift); a StreamGraph with `--m` is run live
/// with tracing on (the same run `ccs trace` makes) and the resulting
/// document analyzed; a plain StreamGraph gets the structural rate
/// analysis.
fn analyze(args: &Args) -> CliResult {
    let path = args.positional(0, "graph or trace file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(v) = serde_json::from_str::<serde_json::Value>(&text) {
        if v["schema"].as_str() == Some(ccs_obs::chrome::SCHEMA) {
            let analysis = ccs_insight::analyze_doc(&v).map_err(|e| format!("{path}: {e}"))?;
            return emit_analysis(args, analysis);
        }
    }
    if args.flag("m").is_some() {
        // Live mode: run the graph with tracing on (the exact run `ccs
        // trace` exports) and analyze the in-memory document, so the
        // file and live paths cannot diverge.
        let doc = build_trace_doc(args)?;
        let analysis = ccs_insight::analyze_doc(&doc).map_err(|e| format!("{path}: {e}"))?;
        return emit_analysis(args, analysis);
    }
    let g: StreamGraph = serde_json::from_str(&text)
        .map_err(|e| format!("{path} is not a StreamGraph JSON: {e}"))?;
    let ra = RateAnalysis::analyze_single_io(&g)?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "nodes        : {}", g.node_count());
    let _ = writeln!(out, "edges        : {}", g.edge_count());
    let _ = writeln!(out, "total state  : {} words", g.total_state());
    let _ = writeln!(out, "max state    : {} words", g.max_state());
    let _ = writeln!(out, "pipeline     : {}", g.is_pipeline());
    let _ = writeln!(out, "homogeneous  : {}", g.is_homogeneous());
    let source = ra.source.expect("single source");
    let sink = ra.sink.expect("single sink");
    let _ = writeln!(out, "source       : {}", g.node(source).name);
    let _ = writeln!(out, "sink         : {}", g.node(sink).name);
    let _ = writeln!(out, "gain(sink)   : {}", ra.gain(sink));
    let q_str: Vec<String> = g
        .node_ids()
        .map(|v| format!("{}={}", g.node(v).name, ra.q(v)))
        .collect();
    let _ = writeln!(out, "repetitions  : {}", q_str.join(" "));
    Ok(out)
}

fn strategy_of(args: &Args) -> Result<Strategy, Box<dyn Error>> {
    Ok(match args.flag("strategy") {
        None | Some("auto") => Strategy::Auto,
        Some("greedy2m") => Strategy::PipelineGreedy2M,
        Some("dp") => Strategy::PipelineDp,
        Some("dag") => Strategy::DagGreedyRefined,
        Some("exact") => Strategy::DagExact,
        Some(other) => return Err(format!("unknown strategy '{other}'").into()),
    })
}

fn params_of(args: &Args) -> Result<CacheParams, Box<dyn Error>> {
    let m = args.required_u64("m")?;
    let b = args.u64_or("b", 16)?;
    Ok(CacheParams::new(m, b))
}

fn partition(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let ra = RateAnalysis::analyze_single_io(&g)?;
    let planner = Planner::new(params_of(args)?).with_strategy(strategy_of(args)?);
    let (p, bw, used) = planner.partition(&g, &ra)?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "strategy   : {used}");
    let _ = writeln!(out, "components : {}", p.num_components());
    let _ = writeln!(out, "bandwidth  : {bw} items/input");
    let _ = writeln!(out, "max state  : {} words", p.max_component_state(&g));
    let _ = writeln!(out, "max degree : {}", p.max_component_degree(&g));
    for (i, comp) in p.components().iter().enumerate() {
        let names: Vec<&str> = comp.iter().map(|&v| g.node(v).name.as_str()).collect();
        let _ = writeln!(
            out,
            "  [{i}] ({} words) {}",
            g.state_of(comp),
            names.join(", ")
        );
    }
    Ok(out)
}

fn simulate(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let params = params_of(args)?;
    let planner = Planner::new(params).with_strategy(strategy_of(args)?);
    let outputs = args.u64_or("outputs", 1000)?;
    let plan = planner.plan(&g, Horizon::SinkFirings(outputs))?;
    let eval = planner.evaluate(&g, &plan)?;
    let report = Report::new(&g, params, &plan, &eval);
    if args.has("json") {
        Ok(report.to_json())
    } else {
        Ok(format!(
            "strategy {} | {} components | bandwidth {:.4} items/input\n\
             {} misses ({} interior) for {} outputs = {:.4} misses/output",
            report.strategy,
            report.components,
            report.bandwidth,
            report.misses,
            report.interior_misses,
            report.outputs,
            report.misses_per_output,
        ))
    }
}

/// Topology from `--topo NxCxK` (synthetic), `--topo-from`/`--from`
/// (replay of a `ccs topo --json` dump), or `None` for host discovery.
fn topo_of(args: &Args) -> Result<Option<Topology>, Box<dyn Error>> {
    let from = args.flag("topo-from").or_else(|| args.flag("from"));
    match (args.flag("topo"), from) {
        (Some(_), Some(_)) => Err("--topo and --topo-from/--from are mutually exclusive".into()),
        (Some(spec), None) => Ok(Some(Topology::synthetic(&spec.parse::<TopoSpec>()?))),
        (None, Some(path)) => Ok(Some(load_topo_dump(path)?)),
        (None, None) => Ok(None),
    }
}

/// Rebuild a machine tree from a `ccs topo --json` dump: each entry of
/// the `clusters` array is one LLC cluster, `(os_node, cpus)` — enough
/// to replay another machine's topology here for placement inspection.
fn load_topo_dump(path: &str) -> Result<Topology, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not JSON: {e}"))?;
    let serde_json::Value::Array(clusters) = &v["clusters"] else {
        return Err(format!("{path}: no `clusters` array (want a `ccs topo --json` dump)").into());
    };
    let mut groups = Vec::with_capacity(clusters.len());
    for c in clusters {
        // `os_node` is the authoritative id; older dumps may only have
        // the dense `node` index, which replays equivalently.
        let node = c["os_node"]
            .as_u64()
            .or_else(|| c["node"].as_u64())
            .ok_or_else(|| format!("{path}: cluster without os_node/node"))?
            as usize;
        let serde_json::Value::Array(cpu_vals) = &c["cpus"] else {
            return Err(format!("{path}: cluster without a cpus array").into());
        };
        let cpus = cpu_vals
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| format!("{path}: non-integer cpu id"))
            })
            .collect::<Result<Vec<usize>, String>>()?;
        groups.push((node, cpus));
    }
    if groups.iter().all(|(_, cpus)| cpus.is_empty()) {
        return Err(format!("{path}: dump describes no cpus").into());
    }
    Ok(Topology::from_replay(groups))
}

fn run_dag(args: &Args) -> CliResult {
    let path = args.positional(0, "graph file")?;
    let g = load(path)?;
    let planner = Planner::new(params_of(args)?).with_strategy(strategy_of(args)?);
    let workers = args.u64_or("workers", 2)?.max(1) as usize;
    let rounds = args.u64_or("rounds", 8)?;
    let placement = match args.flag("placement") {
        None => ccs_exec::Placement::RoundRobin,
        Some(name) => ccs_exec::Placement::parse(name)
            .ok_or_else(|| format!("unknown placement '{name}' (rr|greedy|llc)"))?,
    };
    let segment_counters = args.has("segment-counters");
    // Per-segment attribution is meaningless without counters; asking
    // for it implies them.
    let counters = args.has("counters") || segment_counters;
    let mut cfg = RunConfig::new(workers)
        .with_placement(placement)
        .with_pinning(args.has("pin-cores"))
        .with_counters(counters)
        .with_warmup(args.u64_or("warmup", 0)?)
        .with_segment_counters(segment_counters)
        .with_counter_stride(args.u64_or("stride", 1)?)
        .with_warmup_mode(if args.has("per-worker-warmup") {
            ccs_exec::WarmupMode::PerWorker
        } else {
            ccs_exec::WarmupMode::Epoch
        })
        .with_first_touch(args.has("first-touch"))
        .with_trace(args.has("trace"))
        .with_windows(args.u64_or("windows", 0)?)
        .with_trace_capacity(args.u64_or("trace-cap", 0)? as usize)
        .with_fused(args.has("fused"));
    if let Some(topo) = topo_of(args)? {
        cfg = cfg.with_topology(topo);
    }
    let adapt = args.has("adapt");
    if adapt {
        cfg = cfg.with_adapt(ccs_exec::AdaptConfig::default());
    }
    // Workload-aware binding by file stem: a graph saved as
    // `phase-shift.json` (`ccs gen app phase-shift`) gets its seeded
    // perturbation kernels, everything else the synthetic binding.
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("");
    let inst = ccs_apps::bound_instance(stem, g);
    let pr = planner.plan_and_run_parallel(inst, rounds, &cfg)?;
    let stats = &pr.stats;
    let totals = stats.counter_totals();
    if args.has("json") {
        let workers_json: Vec<serde_json::Value> = stats
            .workers
            .iter()
            .map(|w| {
                serde_json::json!({
                    "worker": w.worker,
                    "segments": w.segments,
                    "firings": w.firings,
                    "batches": w.batches,
                    "stalls": w.stalls,
                    "stall_ms": w.stall_time.as_secs_f64() * 1e3,
                    "busy_ms": w.busy.as_secs_f64() * 1e3,
                    "pinned_cpu": w.pinned_cpu,
                    "counters": w.counters.as_ref().map(|s| s.to_json(None)),
                    "warmup_excluded_batches": w.warmup_excluded,
                    "migrations": w.migrations,
                    "windows": w.windows.iter().map(ccs_obs::window_json).collect::<Vec<_>>(),
                    "trace_events": w.trace.as_ref().map_or(0, |t| t.events.len() as u64),
                    "trace_dropped": w.trace.as_ref().map_or(0, |t| t.dropped),
                })
            })
            .collect();
        // Per-segment attribution (only when requested): misses per
        // sink item per segment over the steady-state window.
        let segments_json: Vec<serde_json::Value> = stats
            .segment_counters()
            .iter()
            .map(|sc| {
                let mut v = sc.sample.to_json(None);
                if let serde_json::Value::Object(pairs) = &mut v {
                    pairs.insert(0, ("seg".into(), serde_json::json!(sc.seg)));
                    pairs.insert(1, ("batches".into(), serde_json::json!(sc.batches)));
                    pairs.insert(
                        2,
                        (
                            "batches_counted".into(),
                            serde_json::json!(sc.batches_counted),
                        ),
                    );
                    pairs.insert(
                        3,
                        (
                            "llc_misses_per_item".into(),
                            serde_json::to_value(sc.per_item(
                                ccs_perf::CounterKind::LlcMisses,
                                stats.items_per_round(),
                            ))
                            .unwrap_or(serde_json::Value::Null),
                        ),
                    );
                }
                v
            })
            .collect();
        // Counter tri-state: "off" (not requested), "unavailable"
        // (requested, nothing opened anywhere — containers, paranoid),
        // or the aggregated readings.
        let counters_json = if !counters {
            serde_json::Value::String("off".into())
        } else {
            match &totals {
                // Per-worker samples get no item denominator (items are
                // a sink-level quantity), so only the aggregate carries
                // llc_misses_per_item.
                Some(t) => t.to_json(Some(stats.run.sink_items)),
                None => serde_json::Value::String("unavailable".into()),
            }
        };
        let mut top = serde_json::json!({
            "strategy": pr.strategy_used,
            "placement": placement.name(),
            "pin_cores": cfg.pin_cores,
            "pinned_workers": stats.pinned_workers(),
            "segments": stats.segments,
            "workers": workers,
            "granularity_t": stats.t,
            "rounds": stats.rounds,
            "warmup_batches": stats.warmup,
            "warmup_mode": stats.warmup_mode.name(),
            "first_touch_rings": stats.first_touch_rings,
            "rings_touched": stats.rings_first_touched(),
            "adapt": adapt,
            "fused": cfg.fused,
            "migrations": stats.total_migrations(),
            "trace_enabled": stats.trace_enabled,
            "trace_events": stats.trace_events(),
            "trace_dropped": stats.trace_dropped(),
            "window_batches": stats.window_batches,
            // All workers' windows merged onto one time axis.
            "windows": stats.windows().iter().map(|(w, s)| {
                let mut v = ccs_obs::window_json(s);
                if let serde_json::Value::Object(pairs) = &mut v {
                    pairs.insert(0, ("worker".into(), serde_json::json!(*w as u64)));
                }
                v
            }).collect::<Vec<_>>(),
            "measured_sink_items": stats.measured_sink_items(),
            "bandwidth": pr.bandwidth.to_f64(),
            "firings": stats.run.firings,
            "sink_items": stats.run.sink_items,
            "wall_ms": stats.run.wall.as_secs_f64() * 1e3,
            "stall_ms": stats.total_stall_time().as_secs_f64() * 1e3,
            "items_per_sec": stats.items_per_sec(),
            "digest": format!("{:016x}", stats.run.digest.unwrap_or(0)),
            "counters": counters_json,
            "counted_workers": stats.counted_workers(),
            "per_worker": workers_json,
        });
        if segment_counters {
            if let serde_json::Value::Object(pairs) = &mut top {
                pairs.push((
                    "per_segment".to_string(),
                    serde_json::Value::Array(segments_json),
                ));
            }
        }
        return Ok(serde_json::to_string_pretty(&top)?);
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "strategy {} | placement {} | {} segments on {} workers{} | T = {}{}",
        pr.strategy_used,
        placement.name(),
        stats.segments,
        workers,
        if cfg.pin_cores {
            format!(" ({} pinned)", stats.pinned_workers())
        } else {
            String::new()
        },
        stats.t,
        if cfg.fused { " | fused" } else { "" },
    );
    let _ = writeln!(
        out,
        "{} firings, {} sink items in {:.2} ms = {:.3} M items/s | digest {:016x}",
        stats.run.firings,
        stats.run.sink_items,
        stats.run.wall.as_secs_f64() * 1e3,
        stats.items_per_sec() / 1e6,
        stats.run.digest.unwrap_or(0),
    );
    if counters {
        if stats.warmup > 0 {
            let _ = writeln!(
                out,
                "warmup: first {} of {} batches/segment excluded from counters \
                 ({} steady-state sink items measured)",
                stats.warmup,
                stats.rounds,
                stats.measured_sink_items(),
            );
        }
        match &totals {
            Some(t) => {
                use ccs_perf::CounterKind as K;
                let _ = writeln!(
                    out,
                    "counters ({} worker{}): llc misses {}{} | mpki {} | ipc {}{}",
                    stats.counted_workers(),
                    if stats.counted_workers() == 1 {
                        ""
                    } else {
                        "s"
                    },
                    t.get(K::LlcMisses).map_or("n/a".into(), |v| v.to_string()),
                    stats
                        .llc_misses_per_item()
                        .map_or(String::new(), |v| format!(" ({v:.3}/item)")),
                    t.mpki().map_or("n/a".into(), |v| format!("{v:.3}")),
                    t.ipc().map_or("n/a".into(), |v| format!("{v:.2}")),
                    if t.multiplexed() {
                        " | multiplexed (scaled)"
                    } else {
                        ""
                    },
                );
            }
            None => {
                let probe = ccs_perf::probe();
                let _ = writeln!(
                    out,
                    "counters: unavailable ({})",
                    probe
                        .reason
                        .as_deref()
                        .unwrap_or("no worker opened a group"),
                );
            }
        }
    }
    if adapt || stats.total_migrations() > 0 {
        let _ = writeln!(
            out,
            "migrations: {} live segment handoff(s){}",
            stats.total_migrations(),
            if adapt {
                " (online controller over the counter-window stream)"
            } else {
                ""
            },
        );
    }
    if stats.trace_enabled || stats.window_batches > 0 {
        let _ = writeln!(
            out,
            "obs: {} trace events ({} dropped) | {} counter windows every {} batches \
             ({} timing-only, {} low-residency) — export with `ccs trace`",
            stats.trace_events(),
            stats.trace_dropped(),
            stats.window_count(),
            stats.window_batches,
            stats.windows_timing_only(),
            stats.windows_scaled_below(warn_residency_of(args)?),
        );
    }
    if segment_counters {
        let per_round = stats.items_per_round();
        for sc in stats.segment_counters() {
            let _ = writeln!(
                out,
                "  segment {}: {}/{} batches counted{}",
                sc.seg,
                sc.batches_counted,
                sc.batches,
                match sc.per_item(ccs_perf::CounterKind::LlcMisses, per_round) {
                    Some(v) => format!(", {v:.3} llc misses/item"),
                    None => ", llc misses/item n/a".to_string(),
                },
            );
        }
    }
    for w in &stats.workers {
        let _ = writeln!(
            out,
            "  worker {}{}: segments {:?}, {} firings, {} batches, {} stalls ({:.2} ms), busy {:.2} ms{}",
            w.worker,
            match w.pinned_cpu {
                Some(cpu) => format!(" @cpu{cpu}"),
                None => String::new(),
            },
            w.segments,
            w.firings,
            w.batches,
            w.stalls,
            w.stall_time.as_secs_f64() * 1e3,
            w.busy.as_secs_f64() * 1e3,
            match w.migrations {
                0 => String::new(),
                n => format!(", {n} handoff(s) released"),
            } + &w
                .counters
                .as_ref()
                .and_then(|s| s.get(ccs_perf::CounterKind::LlcMisses))
                .map_or(String::new(), |m| format!(", {m} llc misses")),
        );
    }
    Ok(out)
}

/// `ccs trace` — run a graph with event tracing on and export the
/// per-worker timelines as a Chrome trace-event document
/// (`ccs-trace/v1`). The default output is the text summary; `--json`
/// prints the raw document and `-o FILE` saves it for Perfetto
/// (ui.perfetto.dev) or a later `ccs report`. Counter windows close
/// every W batches (`--windows`, default 1) so each worker's track
/// carries a counter series next to its batch/stall spans; without a
/// usable PMU the windows degrade to timing-only spans.
fn trace_cmd(args: &Args) -> CliResult {
    emit_trace(args, build_trace_doc(args)?)
}

/// The `ccs trace` run itself: execute the graph with tracing on and
/// build the `ccs-trace/v1` document. Shared with `ccs analyze --m`
/// (live analysis), so both subcommands describe the identical run.
fn build_trace_doc(args: &Args) -> Result<serde_json::Value, Box<dyn Error>> {
    use ccs_obs::chrome::{self, TraceWorker};
    let path = args.positional(0, "graph file")?;
    let g = load(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.to_string(), |s| s.to_string_lossy().into_owned());
    let planner = Planner::new(params_of(args)?).with_strategy(strategy_of(args)?);
    let rounds = args.u64_or("rounds", 8)?.max(1);
    let windows = args.u64_or("windows", 1)?;
    let trace_cap = args.u64_or("trace-cap", 0)? as usize;
    // Tracing is the point of this subcommand, so counters default on
    // (they only annotate; `--no-counters` drops to timing-only).
    let counters = !args.has("no-counters");
    let warmup = args.u64_or("warmup", 0)?;
    let warn_residency = warn_residency_of(args)?;
    // Echo where the machine model came from, so a saved document is
    // self-describing on another machine.
    let topology = match (args.flag("topo"), args.flag("topo-from")) {
        (Some(spec), _) => spec.to_string(),
        (None, Some(_)) => "replay".to_string(),
        (None, None) => "host".to_string(),
    };
    let warmup_mode = if args.has("per-worker-warmup") {
        ccs_exec::WarmupMode::PerWorker
    } else {
        ccs_exec::WarmupMode::Epoch
    };

    if args.has("serial") {
        let plan = planner.plan(&g, Horizon::Rounds(rounds))?;
        let firings_per_round = (plan.run.firings.len() as u64) / rounds;
        let mut inst = ccs_runtime::Instance::synthetic(g);
        let (run, obs) = ccs_runtime::serial::execute_obs(
            &mut inst,
            &plan.run,
            &ccs_runtime::ObsConfig {
                counters,
                warmup_firings: warmup.min(rounds - 1) * firings_per_round,
                window_firings: windows * firings_per_round,
                block_firings: firings_per_round,
                trace: true,
                trace_capacity: trace_cap,
            },
        );
        let tl = obs.trace.as_ref().expect("trace was requested");
        let workers = [TraceWorker {
            worker: 0,
            name: "serial".to_string(),
            events: &tl.events,
            dropped: tl.dropped,
            windows: &obs.windows,
        }];
        let meta = serde_json::json!({
            "engine": "serial",
            "workers": 1u64,
            "rounds": rounds,
            "warmup": warmup.min(rounds - 1),
            "windows_every": windows,
            "wall_ms": run.wall.as_secs_f64() * 1e3,
            "digest": format!("{:016x}", run.digest.unwrap_or(0)),
        });
        return Ok(chrome::document_with(&name, meta, &workers, warn_residency));
    }

    let workers = args.u64_or("workers", 2)?.max(1) as usize;
    let placement = match args.flag("placement") {
        None => ccs_exec::Placement::RoundRobin,
        Some(p) => ccs_exec::Placement::parse(p)
            .ok_or_else(|| format!("unknown placement '{p}' (rr|greedy|llc)"))?,
    };
    let mut cfg = RunConfig::new(workers)
        .with_placement(placement)
        .with_pinning(args.has("pin-cores"))
        .with_counters(counters)
        .with_warmup(warmup)
        .with_warmup_mode(warmup_mode)
        .with_trace(true)
        .with_windows(windows)
        .with_trace_capacity(trace_cap);
    if args.has("adapt") {
        cfg = cfg.with_adapt(ccs_exec::AdaptConfig::default());
    }
    if let Some(topo) = topo_of(args)? {
        cfg = cfg.with_topology(topo);
    }
    // Bind by file stem so `phase-shift.json` traces with its seeded
    // perturbation kernels — the workload the adaptive controller is
    // built to answer.
    let inst = ccs_apps::bound_instance(&name, g);
    let pr = planner.plan_and_run_parallel(inst, rounds, &cfg)?;
    let stats = &pr.stats;
    let tracks: Vec<TraceWorker> = stats
        .workers
        .iter()
        .map(|w| TraceWorker {
            worker: w.worker,
            name: match w.pinned_cpu {
                Some(cpu) => format!("worker {} @cpu{cpu}", w.worker),
                None => format!("worker {}", w.worker),
            },
            events: w.trace.as_ref().map_or(&[][..], |t| &t.events),
            dropped: w.trace.as_ref().map_or(0, |t| t.dropped),
            windows: &w.windows,
        })
        .collect();
    let meta = serde_json::json!({
        "engine": "parallel",
        "strategy": pr.strategy_used,
        "placement": placement.name(),
        "pin_cores": cfg.pin_cores,
        "topology": topology,
        "warmup_mode": warmup_mode.name(),
        "workers": workers as u64,
        "rounds": rounds,
        "warmup": warmup,
        "windows_every": windows,
        "wall_ms": stats.run.wall.as_secs_f64() * 1e3,
        "digest": format!("{:016x}", stats.run.digest.unwrap_or(0)),
    });
    Ok(chrome::document_with(&name, meta, &tracks, warn_residency))
}

/// Shared tail of `ccs trace`: save with `-o`, print raw JSON with
/// `--json`, otherwise render the text summary.
fn emit_trace(args: &Args, doc: serde_json::Value) -> CliResult {
    let json = serde_json::to_string_pretty(&doc)?;
    if let Some(path) = args.flag("out") {
        std::fs::write(path, &json)?;
    }
    if args.has("json") {
        return Ok(json);
    }
    let mut rendered = ccs_obs::chrome::render(&doc)?;
    if let Some(path) = args.flag("out") {
        use std::fmt::Write as _;
        let _ = write!(
            rendered,
            "wrote {path} — load it at ui.perfetto.dev or chrome://tracing"
        );
    }
    Ok(rendered)
}

/// Shared tail of trace analysis (`ccs analyze`): save the
/// `ccs-analysis/v1` document with `-o`, print it raw with `--json`,
/// otherwise render the text summary.
fn emit_analysis(args: &Args, doc: serde_json::Value) -> CliResult {
    let json = serde_json::to_string_pretty(&doc)?;
    if let Some(path) = args.flag("out") {
        std::fs::write(path, &json)?;
    }
    if args.has("json") {
        return Ok(json);
    }
    let mut rendered = ccs_insight::render(&doc)?;
    if let Some(path) = args.flag("out") {
        use std::fmt::Write as _;
        let _ = write!(rendered, "wrote {path}");
    }
    Ok(rendered)
}

/// `--warn-residency R`: the PMU-residency ratio below which a counter
/// window is flagged as low-residency (default
/// [`ccs_obs::MULTIPLEX_WARN_RATIO`]).
fn warn_residency_of(args: &Args) -> Result<f64, Box<dyn Error>> {
    match args.flag("warn-residency") {
        None => Ok(ccs_obs::MULTIPLEX_WARN_RATIO),
        Some(w) => w
            .parse::<f64>()
            .map_err(|_| format!("--warn-residency: '{w}' is not a number").into()),
    }
}

fn topo_cmd(args: &Args) -> CliResult {
    let topo = match topo_of(args)? {
        Some(t) => t,
        None => Topology::discover(),
    };
    let probe = ccs_perf::probe();
    if args.has("json") {
        let clusters: Vec<serde_json::Value> = topo
            .clusters()
            .iter()
            .map(|c| {
                let cpus: Vec<usize> = c.cores.iter().map(|&i| topo.core(i).cpu).collect();
                serde_json::json!({
                    "node": c.node,
                    "os_node": topo.node(c.node).os_node,
                    "cpus": cpus,
                    "cpulist": format_cpulist(&cpus),
                })
            })
            .collect();
        return Ok(serde_json::to_string_pretty(&serde_json::json!({
            "source": topo.source().name(),
            "nodes": topo.node_count(),
            "llc_clusters": topo.cluster_count(),
            "cores": topo.core_count(),
            "clusters": clusters,
            "perf_counters": serde_json::json!({
                "available": probe.available,
                "events": probe.events,
                "reason": probe.reason,
            }),
        }))?);
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}", topo.summary());
    match &probe.reason {
        None => {
            let _ = writeln!(
                out,
                "perf counters: available ({})",
                probe.events.join(", ")
            );
        }
        Some(reason) => {
            let _ = writeln!(out, "perf counters: unavailable ({reason})");
        }
    }
    for (n, node) in topo.nodes().iter().enumerate() {
        if node.os_node == n {
            let _ = writeln!(out, "node {n}:");
        } else {
            // Dense index for placement math, OS id for numactl/lscpu.
            let _ = writeln!(out, "node {n} (os node {}):", node.os_node);
        }
        for &ci in &node.clusters {
            let cpus: Vec<usize> = topo
                .cluster(ci)
                .cores
                .iter()
                .map(|&i| topo.core(i).cpu)
                .collect();
            let _ = writeln!(out, "  llc {ci}: cpus {}", format_cpulist(&cpus));
        }
    }
    Ok(out)
}

/// `ccs report FILE` — render a `ccs-sweep/v1` results document (the
/// schema `ccs sweep` and the e19/e20/e21 binaries emit) as aligned
/// text, via the same renderer the binaries print with. Tolerant of
/// nulls: cells measured where counters were unavailable render as
/// `n/a` rather than erroring, so reports from restricted hosts are
/// still inspectable.
fn report_cmd(args: &Args) -> CliResult {
    use ccs_bench::track;
    // `--history [FILE]`: render the bench trend view instead of a
    // single document; FILE defaults to the history store `ccs bench`
    // appends to.
    if args.has("history") {
        let path = args
            .positionals
            .first()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(track::default_history_path);
        let records = track::load_history(&path)?;
        let last = args.u64_or("last", 10)?.max(1) as usize;
        return Ok(track::render_history(&records, last));
    }
    let path = args.positional(0, "report file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Dispatch on the document's schema tag: trace exports render
    // through `ccs-obs`, analysis documents through `ccs-insight`,
    // bench records through the track renderer, everything else
    // through the sweep renderer. A file that is not a single JSON
    // document but parses as NDJSON bench history renders as the
    // trend view.
    let v: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            if let Ok(records) = track::parse_history(&text) {
                if !records.is_empty() {
                    return Ok(track::render_history(&records, 10));
                }
            }
            return Err(format!("{path} is not JSON: {e}").into());
        }
    };
    if v["schema"].as_str() == Some(ccs_obs::chrome::SCHEMA) {
        return ccs_obs::chrome::render(&v).map_err(|e| format!("{path}: {e}").into());
    }
    if v["schema"].as_str() == Some(ccs_insight::SCHEMA) {
        return ccs_insight::render(&v).map_err(|e| format!("{path}: {e}").into());
    }
    if v["schema"].as_str() == Some(track::SCHEMA) {
        return track::render_record(&v).map_err(|e| format!("{path}: {e}").into());
    }
    ccs_bench::sweep::render(&v).map_err(|e| format!("{path}: {e}").into())
}

/// Comma-separated flag values.
fn csv(args: &Args, name: &str, default: &str) -> Vec<String> {
    args.flag(name)
        .unwrap_or(default)
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// `ccs sweep` — declare and run an experiment grid. The grid comes
/// from `--spec FILE` (a JSON sweep spec, see `ccs_bench::sweep`) or
/// from the flags: apps × workers × placements × pinning, with an
/// optional serial baseline cell. Prints the rendered report (or the
/// raw document with `--json`); `-o FILE` saves the `ccs-sweep/v1`
/// JSON for `ccs report`.
fn sweep_cmd(args: &Args) -> CliResult {
    use ccs_bench::sweep::{self, Cell, Metric, Sweep};
    let mut sweep = match args.flag("spec") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let v: serde_json::Value =
                serde_json::from_str(&text).map_err(|e| format!("{path} is not JSON: {e}"))?;
            sweep::from_spec(&v)?
        }
        None => {
            let mut s = Sweep::new(args.flag("name").unwrap_or("sweep"))
                .with_repeats(args.u64_or("repeats", 3)?.max(1) as usize)
                .with_rounds(args.u64_or("rounds", 8)?.max(1));
            s.seed = args.u64_or("seed", 42)?;
            if let Some(c) = args.flag("confidence") {
                s.confidence = c
                    .parse::<f64>()
                    .map_err(|_| format!("--confidence: '{c}' is not a number"))?;
            }
            for app in csv(args, "apps", "fm-radio,layered-dag") {
                let (name, g) = sweep::workload(&app).ok_or_else(|| {
                    format!("unknown app '{app}' (try `ccs gen app list`, or 'layered-dag')")
                })?;
                s = s.with_workload(name, g);
            }
            let segment_counters = args.has("segment-counters");
            let counters = args.has("counters") || segment_counters;
            let warmup = args.u64_or("warmup", 0)?;
            let stride = args.u64_or("stride", 1)?;
            let warmup_mode = if args.has("per-worker-warmup") {
                ccs_exec::WarmupMode::PerWorker
            } else {
                ccs_exec::WarmupMode::Epoch
            };
            let topo = match args.flag("topo") {
                Some(spec) => Some(spec.parse::<ccs_topo::TopoSpec>()?),
                None => None,
            };
            if args.has("serial") {
                let cell = Cell::serial()
                    .with_counters(counters)
                    .with_warmup(warmup)
                    .with_trace(args.has("trace"))
                    .with_windows(args.u64_or("windows", 0)?);
                // `--fused` doubles the serial baseline too, so the
                // digest assertion covers serial classic vs fused.
                if args.has("fused") {
                    s = s.with_cell(cell.clone());
                    s = s.with_cell(cell.with_fused(true));
                } else {
                    s = s.with_cell(cell);
                }
            }
            let pins: &[bool] = match args.flag("pin") {
                None | Some("off") => &[false],
                Some("on") => &[true],
                Some("both") => &[false, true],
                Some(other) => return Err(format!("--pin {other}: want on|off|both").into()),
            };
            for w in csv(args, "workers", "2") {
                let workers = w
                    .parse::<usize>()
                    .map_err(|_| format!("--workers: '{w}' is not a number"))?
                    .max(1);
                for p in csv(args, "placements", "rr,llc") {
                    let placement = ccs_exec::Placement::parse(&p)
                        .ok_or_else(|| format!("unknown placement '{p}' (rr|greedy|llc)"))?;
                    for &pin in pins {
                        let mut cell = Cell::parallel(workers, placement)
                            .with_pinning(pin)
                            .with_counters(counters)
                            .with_segment_counters(segment_counters)
                            .with_counter_stride(stride)
                            .with_warmup(warmup)
                            .with_warmup_mode(warmup_mode)
                            .with_first_touch(args.has("first-touch"))
                            .with_trace(args.has("trace"))
                            .with_windows(args.u64_or("windows", 0)?);
                        if let Some(t) = topo {
                            cell = cell.with_topology(t);
                        }
                        // `--adapt` doubles each parallel cell with an
                        // adaptive twin and `--fused` with a fused
                        // twin, so every point of the grid gets its own
                        // pairing (both flags compose: four variants).
                        let mut variants = vec![cell.clone()];
                        if args.has("adapt") {
                            if args.u64_or("windows", 0)? == 0 {
                                return Err("--adapt requires --windows >= 1 (the controller \
                                            is driven by the counter-window stream)"
                                    .into());
                            }
                            variants.push(cell.with_adapt(true));
                        }
                        if args.has("fused") {
                            for v in variants.clone() {
                                variants.push(v.with_fused(true));
                            }
                        }
                        for v in variants {
                            s = s.with_cell(v);
                        }
                    }
                }
            }
            // Comparison family: every cell against the chosen (or
            // first) baseline, on the requested metrics.
            match args.flag("baseline") {
                None => s = sweep::default_comparisons(s),
                Some(baseline) => {
                    for m in csv(args, "metrics", "llc_misses_per_item,wall_ms") {
                        let metric =
                            Metric::parse(&m).ok_or_else(|| format!("unknown metric '{m}'"))?;
                        for cell in s.cells.clone() {
                            let label = cell.label();
                            if label != baseline {
                                s = s.with_comparison(metric, baseline, label);
                            }
                        }
                    }
                }
            }
            s
        }
    };
    // The flag overrides both the flag-built grid and a spec file;
    // absent, a spec's own `warn_residency` (or the default) stands.
    if args.flag("warn-residency").is_some() {
        sweep.warn_residency = warn_residency_of(args)?;
    }
    let out = sweep.run()?;
    let json = serde_json::to_string_pretty(&out)?;
    if let Some(path) = args.flag("out") {
        std::fs::write(path, &json)?;
    }
    if args.has("json") {
        // Machine-readable mode: pure JSON on stdout, like the other
        // --json subcommands.
        return Ok(json);
    }
    let mut rendered = ccs_bench::sweep::render(&out)?;
    if let Some(path) = args.flag("out") {
        use std::fmt::Write as _;
        let _ = write!(rendered, "wrote {path}");
    }
    Ok(rendered)
}

/// `ccs bench` — the continuous-tracking entry point: run the
/// canonical sweep, append a `ccs-bench/v1` record to the NDJSON
/// history, and judge it against the newest record with the same
/// machine fingerprint. With `--check`, a significant
/// beyond-tolerance regression on any metric is an error (exit 1) —
/// the CI perf gate. A run with no matching baseline seeds the
/// history instead of failing, so new machines and grid changes
/// self-initialize.
fn bench_cmd(args: &Args) -> CliResult {
    use ccs_bench::track;
    let smoke = ccs_bench::sweep::smoke();
    let repeats = args
        .u64_or(
            "repeats",
            ccs_bench::sweep::repeats_or(if smoke { 3 } else { 5 }) as u64,
        )?
        .max(2) as usize;
    let rounds = args.u64_or("rounds", if smoke { 4 } else { 24 })?.max(1);
    let apps = csv(args, "apps", "fm-radio,layered-dag");
    let sweep = track::canonical_sweep_fused(repeats, rounds, &apps, args.has("fused"))?;
    let fp = track::Fingerprint::detect(&sweep);
    let timestamp = match args.flag("timestamp") {
        Some(t) => t
            .parse::<u64>()
            .map_err(|_| format!("--timestamp: '{t}' is not a number"))?,
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    };
    let mut cfg = track::CompareCfg::for_fingerprint(&fp);
    if let Some(t) = args.flag("tolerance") {
        cfg.tolerance = t
            .parse::<f64>()
            .map_err(|_| format!("--tolerance: '{t}' is not a number"))?;
    }
    let store = args
        .flag("store")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(track::default_history_path);
    // The baseline search defaults to the store itself; --baseline
    // judges against a different history (e.g. the checked-in CI
    // record) without touching where this run is appended.
    let baseline_path = args
        .flag("baseline")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| store.clone());
    let history = track::load_history(&baseline_path)?;

    let doc = sweep.run()?;
    let record = track::record_from_sweep(&doc, &fp, &track::git_rev(), timestamp)?;
    let baseline = track::latest_matching(&history, &fp);
    let comparison = baseline.map(|b| track::compare_records(b, &record, &cfg));

    let appended = if args.has("no-append") {
        None
    } else {
        track::append_record(&store, &record)
            .map_err(|e| format!("cannot append to {}: {e}", store.display()))?;
        Some(store.display().to_string())
    };

    let mut out = String::new();
    if args.has("json") {
        out = serde_json::to_string_pretty(&serde_json::json!({
            "record": record.clone(),
            "comparison": comparison.clone().unwrap_or(serde_json::Value::Null),
        }))?;
    } else {
        out.push_str(&track::render_record(&record)?);
        match &comparison {
            Some(cmp) => out.push_str(&track::render_comparison(cmp)),
            None => out.push_str(
                "no matching baseline in history — this run seeds it \
                 (fingerprint never seen, or empty history)\n",
            ),
        }
        use std::fmt::Write as _;
        match appended {
            Some(path) => {
                let _ = writeln!(out, "appended to {path}");
            }
            None => {
                let _ = writeln!(out, "not appended (--no-append)");
            }
        }
    }
    if args.has("check") {
        if let Some(cmp) = &comparison {
            let regressed = cmp["regressed"].as_u64().unwrap_or(0);
            if regressed > 0 {
                return Err(format!(
                    "performance REGRESSED — {regressed} metric(s) significantly worse \
                     than the baseline:\n{}",
                    track::render_comparison(cmp),
                )
                .into());
            }
        }
    }
    emit(args, out)
}

fn compare(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let params = params_of(args)?;
    let outputs = args.u64_or("outputs", 1000)?;
    let rows = compare_schedulers(&g, params, outputs);
    if rows.is_empty() {
        return Err("no scheduler could run (is the graph rate matched?)".into());
    }
    Ok(format_table("scheduler comparison", &rows))
}

fn autotune_cmd(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let params = params_of(args)?;
    let planner = Planner::new(params);
    let outputs = args.u64_or("outputs", 1000)?;
    let trial = (outputs / 4).max(50);
    let tuned = ccs_core::autotune::autotune(
        &planner,
        &g,
        Horizon::SinkFirings(trial),
        Horizon::SinkFirings(outputs),
    )?;
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>11} {:>11}",
        "strategy", "misses/output", "components", "bandwidth"
    );
    for t in &tuned.trials {
        let _ = writeln!(
            out,
            "{:<22} {:>14.4} {:>11} {:>11.3}",
            t.strategy_used, t.misses_per_output, t.components, t.bandwidth
        );
    }
    let _ = writeln!(out, "winner: {}", tuned.plan.strategy_used);
    Ok(out)
}

fn fuse_cmd(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    let ra = RateAnalysis::analyze_single_io(&g)?;
    let planner = Planner::new(params_of(args)?).with_strategy(strategy_of(args)?);
    let (p, bw, used) = planner.partition(&g, &ra)?;
    let fused = ccs_partition::fusion::fuse(&g, &ra, &p).ok_or("partition is not well ordered")?;
    let summary = format!(
        "fused {} modules into {} via {used} (bandwidth {bw})",
        g.node_count(),
        fused.graph.node_count()
    );
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, serde_json::to_string_pretty(&fused.graph)?)?;
            Ok(format!("{summary}\nwrote {path}"))
        }
        None => Ok(format!(
            "{summary}\n{}",
            serde_json::to_string_pretty(&fused.graph)?
        )),
    }
}

fn dot(args: &Args) -> CliResult {
    let g = load(args.positional(0, "graph file")?)?;
    emit(args, ccs_graph::dot::to_dot(&g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("ccs-cli-test-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn gen_analyze_roundtrip() {
        let path = tmp("g1.json");
        let out = run(
            "gen",
            &args(&["pipeline", "--len", "8", "--state", "64", "-o", &path]),
        )
        .unwrap();
        assert!(out.contains("wrote"));
        let report = run("analyze", &args(&[&path])).unwrap();
        assert!(report.contains("nodes        : 8"));
        assert!(report.contains("pipeline     : true"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn gen_app_and_partition() {
        let path = tmp("g2.json");
        run("gen", &args(&["app", "fm-radio", "-o", &path])).unwrap();
        let out = run("partition", &args(&[&path, "--m", "1088", "--b", "16"])).unwrap();
        assert!(out.contains("components"));
        assert!(out.contains("bandwidth"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn simulate_json_output() {
        let path = tmp("g3.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "12", "--state", "96", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "simulate",
            &args(&[&path, "--m", "1024", "--outputs", "200", "--json"]),
        )
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed["misses"].as_u64().unwrap() > 0);
        assert_eq!(parsed["graph_nodes"].as_u64().unwrap(), 12);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_text_and_json() {
        let path = tmp("g7.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "10", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "run-dag",
            &args(&[&path, "--m", "1024", "--workers", "2", "--rounds", "3"]),
        )
        .unwrap();
        assert!(out.contains("segments"), "{out}");
        assert!(out.contains("worker 0:"), "{out}");
        let out = run(
            "run-dag",
            &args(&[
                &path,
                "--m",
                "1024",
                "--workers",
                "2",
                "--rounds",
                "3",
                "--placement",
                "greedy",
                "--json",
            ]),
        )
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["workers"].as_u64(), Some(2));
        assert_eq!(parsed["placement"].as_str(), Some("comm-greedy"));
        assert!(parsed["items_per_sec"].as_f64().unwrap() > 0.0);
        assert!(run(
            "run-dag",
            &args(&[&path, "--m", "256", "--placement", "bogus"]),
        )
        .is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_llc_with_topology_and_pinning() {
        let path = tmp("g8.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "12", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let base = [&path, "--m", "1024", "--workers", "4", "--rounds", "2"];
        let mut with_llc: Vec<&str> = base.to_vec();
        with_llc.extend([
            "--placement",
            "llc",
            "--topo",
            "1x2x2",
            "--pin-cores",
            "--json",
        ]);
        let out = run("run-dag", &args(&with_llc)).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["placement"].as_str(), Some("llc"));
        assert_eq!(parsed["pin_cores"].as_bool(), Some(true));
        assert!(parsed["stall_ms"].as_f64().is_some());
        assert!(parsed["per_worker"][0]["stall_ms"].as_f64().is_some());
        let llc_digest = parsed["digest"].as_str().unwrap().to_string();
        // Same schedule length under the default placement: digests match.
        let mut plain: Vec<&str> = base.to_vec();
        plain.push("--json");
        let out = run("run-dag", &args(&plain)).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["digest"].as_str(), Some(llc_digest.as_str()));
        // Bad topology spec is an error.
        let mut bad: Vec<&str> = base.to_vec();
        bad.extend(["--topo", "0x1"]);
        assert!(run("run-dag", &args(&bad)).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_adapt_migrates_and_keeps_the_digest() {
        // The file stem is the workload binding: `phase-shift.json`
        // gets the seeded perturbation kernels, so the controller has
        // a real mid-run work step to react to.
        let dir = std::env::temp_dir().join(format!("ccs-cli-adapt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("phase-shift.json").to_string_lossy().into_owned();
        run("gen", &args(&["app", "phase-shift", "-o", &path])).unwrap();
        let base = [
            &path,
            "--m",
            "1024",
            "--workers",
            "2",
            "--rounds",
            "24",
            "--windows",
            "2",
            "--json",
        ];
        let stat: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&base)).unwrap()).unwrap();
        assert_eq!(stat["adapt"].as_bool(), Some(false));
        assert_eq!(stat["migrations"].as_u64(), Some(0));
        let mut adaptive: Vec<&str> = base.to_vec();
        adaptive.push("--adapt");
        let out = run("run-dag", &args(&adaptive)).unwrap();
        let ad: serde_json::Value = serde_json::from_str(&out).unwrap();
        // The seeded work step forces at least one live handoff, and
        // the digest is bit-identical to the static run regardless.
        assert_eq!(ad["adapt"].as_bool(), Some(true));
        assert!(ad["migrations"].as_u64().unwrap() >= 1, "{out}");
        assert_eq!(ad["digest"], stat["digest"]);
        let per_worker: u64 = match &ad["per_worker"] {
            serde_json::Value::Array(ws) => {
                ws.iter().map(|w| w["migrations"].as_u64().unwrap()).sum()
            }
            other => panic!("per_worker is not an array: {other:?}"),
        };
        assert_eq!(per_worker, ad["migrations"].as_u64().unwrap());
        // Adaptive control without the window stream is a loud error,
        // in run-dag and in the flag-built sweep grid alike.
        let err = run(
            "run-dag",
            &args(&[
                &path,
                "--m",
                "1024",
                "--workers",
                "2",
                "--rounds",
                "2",
                "--adapt",
            ]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("windows"), "{err}");
        let err = run(
            "sweep",
            &args(&["--apps", "phase-shift", "--workers", "2", "--adapt"]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--windows"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn run_dag_fused_keeps_the_digest() {
        let path = tmp("g7f.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "10", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let base = [&path, "--m", "1024", "--workers", "2", "--rounds", "3"];
        let mut plain: Vec<&str> = base.to_vec();
        plain.push("--json");
        let classic: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&plain)).unwrap()).unwrap();
        assert_eq!(classic["fused"].as_bool(), Some(false));
        let mut fused_args: Vec<&str> = base.to_vec();
        fused_args.extend(["--fused", "--json"]);
        let fused: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&fused_args)).unwrap()).unwrap();
        assert_eq!(fused["fused"].as_bool(), Some(true));
        assert_eq!(fused["digest"], classic["digest"]);
        assert_eq!(fused["sink_items"], classic["sink_items"]);
        // Text mode marks the hot path so smoke greps can see it.
        let mut text: Vec<&str> = base.to_vec();
        text.push("--fused");
        assert!(run("run-dag", &args(&text)).unwrap().contains("| fused"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_fused_doubles_the_grid() {
        let out = run(
            "sweep",
            &args(&[
                "--apps",
                "fm-radio",
                "--workers",
                "2",
                "--placements",
                "rr",
                "--serial",
                "--fused",
                "--repeats",
                "2",
                "--rounds",
                "2",
                "--json",
            ]),
        )
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
        let labels: Vec<&str> = match &doc["cells"] {
            serde_json::Value::Array(cs) => cs.iter().filter_map(|c| c["label"].as_str()).collect(),
            other => panic!("cells is not an array: {other:?}"),
        };
        for want in ["serial", "serial+fused", "rr/w2", "rr+fused/w2"] {
            assert!(labels.contains(&want), "missing {want} in {labels:?}");
        }
        // The run completing at all proves the digest assertion held
        // across every classic/fused twin.
    }

    #[test]
    fn run_dag_counters_tristate() {
        let path = tmp("g9.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "8", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let base = [&path, "--m", "1024", "--workers", "2", "--rounds", "2"];
        // Not requested: explicit "off".
        let mut plain: Vec<&str> = base.to_vec();
        plain.push("--json");
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&plain)).unwrap()).unwrap();
        assert_eq!(parsed["counters"].as_str(), Some("off"));
        let digest = parsed["digest"].as_str().unwrap().to_string();
        // Requested: either aggregated readings or the explicit
        // "unavailable" fallback — never absent, never a crash; and the
        // digest must be untouched by instrumentation.
        let mut counted: Vec<&str> = base.to_vec();
        counted.extend(["--counters", "--json"]);
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&counted)).unwrap()).unwrap();
        assert_eq!(parsed["digest"].as_str(), Some(digest.as_str()));
        let c = &parsed["counters"];
        if c.as_str() == Some("unavailable") {
            assert_eq!(parsed["counted_workers"].as_u64(), Some(0));
            assert!(parsed["per_worker"][0]["counters"].is_null());
        } else {
            // The object carries the headline metric (possibly null if
            // the LLC event didn't open on this machine).
            assert!(c["multiplexed"].as_bool().is_some(), "{c:?}");
            assert!(parsed["counted_workers"].as_u64().unwrap() > 0);
        }
        // Text mode mentions counters when requested.
        let mut text: Vec<&str> = base.to_vec();
        text.push("--counters");
        let out = run("run-dag", &args(&text)).unwrap();
        assert!(out.contains("counters"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_warmup_and_segment_counters() {
        let path = tmp("g11.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "8", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let base = [&path, "--m", "1024", "--workers", "2", "--rounds", "4"];
        // Reference digest without any instrumentation.
        let mut plain: Vec<&str> = base.to_vec();
        plain.push("--json");
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&plain)).unwrap()).unwrap();
        let digest = parsed["digest"].as_str().unwrap().to_string();
        assert_eq!(parsed["warmup_batches"].as_u64(), Some(0));
        // Whole run measured when warmup is off.
        assert_eq!(
            parsed["measured_sink_items"].as_u64(),
            parsed["sink_items"].as_u64()
        );
        assert!(parsed["per_segment"].is_null());

        // Warmup + per-segment attribution: digest untouched, window
        // shrinks, per-segment entries appear (--segment-counters alone
        // implies --counters).
        let mut seg: Vec<&str> = base.to_vec();
        seg.extend(["--warmup", "1", "--segment-counters", "--json"]);
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&seg)).unwrap()).unwrap();
        assert_eq!(parsed["digest"].as_str(), Some(digest.as_str()));
        assert_eq!(parsed["warmup_batches"].as_u64(), Some(1));
        let sink_items = parsed["sink_items"].as_u64().unwrap();
        assert_eq!(
            parsed["measured_sink_items"].as_u64(),
            Some(sink_items / 4 * 3)
        );
        let segs = &parsed["per_segment"];
        assert_eq!(
            segs.index(0).unwrap()["batches"].as_u64(),
            Some(4),
            "{segs:?}"
        );
        assert!(segs.index(0).unwrap()["batches_counted"].as_u64().unwrap() <= 3);
        // A huge warmup is clamped so a measured window remains.
        let mut huge: Vec<&str> = base.to_vec();
        huge.extend(["--counters", "--warmup", "999", "--json"]);
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&huge)).unwrap()).unwrap();
        assert_eq!(parsed["warmup_batches"].as_u64(), Some(3));
        assert_eq!(parsed["digest"].as_str(), Some(digest.as_str()));
        // Text mode mentions the warmup window and segments.
        let mut text: Vec<&str> = base.to_vec();
        text.extend(["--segment-counters", "--warmup", "1"]);
        let out = run("run-dag", &args(&text)).unwrap();
        assert!(out.contains("warmup: first 1 of 4"), "{out}");
        assert!(out.contains("segment 0:"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_dag_trace_and_windows_json() {
        let path = tmp("g12.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "10", "--state", "64", "-o", &path]),
        )
        .unwrap();
        let base = [&path, "--m", "1024", "--workers", "2", "--rounds", "3"];
        // Reference digest with observability off; the obs fields are
        // present but inert.
        let mut plain: Vec<&str> = base.to_vec();
        plain.push("--json");
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&plain)).unwrap()).unwrap();
        let digest = parsed["digest"].as_str().unwrap().to_string();
        assert_eq!(parsed["trace_enabled"].as_bool(), Some(false));
        assert_eq!(parsed["trace_events"].as_u64(), Some(0));
        assert_eq!(parsed["window_batches"].as_u64(), Some(0));
        // Trace + windows: same digest, a recorded timeline, and the
        // merged per-worker window array.
        let mut traced: Vec<&str> = base.to_vec();
        traced.extend(["--trace", "--windows", "1", "--counters", "--json"]);
        let parsed: serde_json::Value =
            serde_json::from_str(&run("run-dag", &args(&traced)).unwrap()).unwrap();
        assert_eq!(parsed["digest"].as_str(), Some(digest.as_str()));
        assert_eq!(parsed["trace_enabled"].as_bool(), Some(true));
        assert!(parsed["trace_events"].as_u64().unwrap() > 0);
        assert_eq!(parsed["trace_dropped"].as_u64(), Some(0));
        assert_eq!(parsed["window_batches"].as_u64(), Some(1));
        let windows = match &parsed["windows"] {
            serde_json::Value::Array(w) => w,
            other => panic!("windows: {other:?}"),
        };
        assert!(!windows.is_empty());
        assert!(windows[0]["worker"].as_u64().is_some());
        assert!(windows[0]["batches"].as_u64().unwrap() >= 1);
        assert!(parsed["per_worker"][0]["trace_events"].as_u64().is_some());
        // Text mode carries the obs summary line.
        let mut text: Vec<&str> = base.to_vec();
        text.extend(["--trace", "--windows", "1"]);
        let out = run("run-dag", &args(&text)).unwrap();
        assert!(out.contains("obs:"), "{out}");
        assert!(out.contains("export with `ccs trace`"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_exports_chrome_documents() {
        let g = tmp("g13.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "10", "--state", "64", "-o", &g]),
        )
        .unwrap();
        // Parallel run: save the document, render the text summary.
        let doc_path = tmp("trace-doc.json");
        let rendered = run(
            "trace",
            &args(&[
                &g,
                "--m",
                "1024",
                "--workers",
                "2",
                "--rounds",
                "3",
                "--windows",
                "1",
                "-o",
                &doc_path,
            ]),
        )
        .unwrap();
        assert!(rendered.contains("engine: \"parallel\""), "{rendered}");
        assert!(rendered.contains("worker 0:"), "{rendered}");
        assert!(
            rendered.contains(&format!("wrote {doc_path}")),
            "{rendered}"
        );
        // The saved document is the versioned trace schema with a
        // non-empty Chrome trace-event array (spans + thread metadata).
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&doc_path).unwrap()).unwrap();
        assert_eq!(v["schema"].as_str(), Some("ccs-trace/v1"));
        let events = match &v["traceEvents"] {
            serde_json::Value::Array(e) => e,
            other => panic!("traceEvents: {other:?}"),
        };
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| e["ph"].as_str() == Some("X")));
        assert!(events.iter().any(|e| e["ph"].as_str() == Some("M")));
        // `ccs report` dispatches on the schema tag and renders the
        // same summary.
        let reported = run("report", &args(&[&doc_path])).unwrap();
        assert!(rendered.starts_with(&reported), "{reported}");
        // Serial path: `--json` prints the raw document.
        let out = run(
            "trace",
            &args(&[&g, "--m", "1024", "--serial", "--rounds", "3", "--json"]),
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["schema"].as_str(), Some("ccs-trace/v1"));
        assert_eq!(v["meta"]["engine"].as_str(), Some("serial"));
        match &v["traceEvents"] {
            serde_json::Value::Array(e) => assert!(!e.is_empty()),
            other => panic!("traceEvents: {other:?}"),
        }
        std::fs::remove_file(doc_path).ok();
        std::fs::remove_file(g).ok();
    }

    #[test]
    fn sweep_output_roundtrips_through_report() {
        // A tiny grid from flags: serial baseline + rr/llc at 2
        // workers, 2 interleaved repeats. The engine asserts digest
        // equivalence across all cells; `-o` saves the ccs-sweep/v1
        // document and `ccs report` renders the same text.
        let path = tmp("sweep.json");
        let rendered = run(
            "sweep",
            &args(&[
                "--apps",
                "fm-radio",
                "--workers",
                "2",
                "--placements",
                "rr,llc",
                "--serial",
                "--repeats",
                "2",
                "--rounds",
                "3",
                "--name",
                "cli-test",
                "-o",
                &path,
            ]),
        )
        .unwrap();
        assert!(
            rendered.contains("cli-test: 2 repeats x 3 rounds"),
            "{rendered}"
        );
        assert!(rendered.contains("serial"), "{rendered}");
        assert!(rendered.contains("llc/w2"), "{rendered}");
        assert!(rendered.contains("paired deltas"), "{rendered}");
        assert!(rendered.contains(&format!("wrote {path}")), "{rendered}");
        // Round-trip: the saved document renders to the same report.
        let reported = run("report", &args(&[&path])).unwrap();
        assert!(rendered.starts_with(&reported), "{reported}");
        // The saved document is the versioned schema with digests and
        // the BH-adjusted comparison family.
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(v["schema"].as_str(), Some("ccs-sweep/v1"));
        let cells = match &v["cells"] {
            serde_json::Value::Array(c) => c,
            other => panic!("cells: {other:?}"),
        };
        assert_eq!(cells.len(), 3);
        let d0 = cells[0]["digest"].as_str().unwrap();
        assert!(cells.iter().all(|c| c["digest"].as_str() == Some(d0)));
        let comps = match &v["comparisons"] {
            serde_json::Value::Array(c) => c,
            other => panic!("comparisons: {other:?}"),
        };
        // Default family: serial (first cell) vs each of the two
        // parallel cells on miss/item and wall time. Wall time always
        // measures, so its comparisons carry BH-adjusted p-values.
        assert_eq!(comps.len(), 4);
        assert!(comps
            .iter()
            .filter(|c| c["metric"].as_str() == Some("wall_ms"))
            .all(|c| c["p_adjusted"].as_f64().is_some()));
        // --json emits the document itself — pure JSON on stdout even
        // with -o, like the other --json subcommands.
        let json_path = tmp("sweep-json.json");
        let out = run(
            "sweep",
            &args(&[
                "--apps",
                "fm-radio",
                "--workers",
                "2",
                "--placements",
                "rr",
                "--repeats",
                "1",
                "--rounds",
                "2",
                "--json",
                "-o",
                &json_path,
            ]),
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["schema"].as_str(), Some("ccs-sweep/v1"));
        assert_eq!(std::fs::read_to_string(&json_path).unwrap(), out);
        std::fs::remove_file(json_path).ok();
        // Bad declarations are errors, not panics.
        assert!(run("sweep", &args(&["--apps", "nope"])).is_err());
        assert!(run("sweep", &args(&["--pin", "sideways"])).is_err());
        // A percent-style confidence is rejected, not silently voided.
        let err = run(
            "sweep",
            &args(&["--apps", "fm-radio", "--rounds", "2", "--confidence", "95"]),
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("confidence"), "{err}");
        assert!(run(
            "sweep",
            &args(&[
                "--apps",
                "fm-radio",
                "--baseline",
                "rr/w2",
                "--metrics",
                "bogus"
            ])
        )
        .is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_trace_flags_reach_the_cells() {
        // `--trace --windows W` flows into every declared cell (serial
        // baseline included) and the saved document carries the per-cell
        // obs block.
        let path = tmp("sweep-trace.json");
        run(
            "sweep",
            &args(&[
                "--apps",
                "fm-radio",
                "--workers",
                "2",
                "--placements",
                "rr",
                "--serial",
                "--trace",
                "--windows",
                "1",
                "--repeats",
                "1",
                "--rounds",
                "2",
                "-o",
                &path,
            ]),
        )
        .unwrap();
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let cells = match &v["cells"] {
            serde_json::Value::Array(c) => c,
            other => panic!("cells: {other:?}"),
        };
        assert_eq!(cells.len(), 2);
        for c in cells {
            let obs = &c["obs"];
            assert_eq!(obs["trace"].as_bool(), Some(true), "{obs:?}");
            assert_eq!(obs["windows_every"].as_u64(), Some(1));
            assert!(obs["trace_events"].as_u64().unwrap() > 0);
            assert!(obs["windows"].as_u64().unwrap() > 0);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_runs_from_a_spec_file() {
        let spec = tmp("spec.json");
        std::fs::write(
            &spec,
            r#"{
              "name": "spec-sweep", "repeats": 2, "rounds": 2,
              "apps": ["fm-radio"],
              "cells": [
                {"workers": 2, "placement": "rr"},
                {"workers": 2, "placement": "llc", "topology": "1x2x2",
                 "pin_cores": true, "label": "llc-box"}
              ],
              "comparisons": [
                {"metric": "wall_ms", "baseline": "rr/w2", "treatment": "llc-box"}
              ]
            }"#,
        )
        .unwrap();
        let out = run("sweep", &args(&["--spec", &spec])).unwrap();
        assert!(out.contains("spec-sweep: 2 repeats x 2 rounds"), "{out}");
        assert!(out.contains("llc-box"), "{out}");
        assert!(out.contains("wall_ms: rr/w2 - llc-box"), "{out}");
        std::fs::remove_file(spec).ok();
    }

    #[test]
    fn report_rejects_other_schemas() {
        // Garbage and legacy (pre-sweep) documents are errors with a
        // pointer at the expected schema.
        let bad = tmp("not-a-report.json");
        std::fs::write(&bad, "{\"cells\": 7}").unwrap();
        let err = run("report", &args(&[&bad])).unwrap_err().to_string();
        assert!(err.contains("ccs-sweep/v1"), "{err}");
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn topo_dump_replays_on_another_machine() {
        // Dump a synthetic 2x2x2 box, then replay the dump and place
        // against it — the `--topo-from` path end to end.
        let dump = run("topo", &args(&["--topo", "2x2x2", "--json"])).unwrap();
        let path = tmp("topo-dump.json");
        std::fs::write(&path, &dump).unwrap();
        let out = run("topo", &args(&["--from", &path])).unwrap();
        assert!(
            out.contains("replay: 2 nodes x 4 llc clusters x 8 cores"),
            "{out}"
        );
        let parsed: serde_json::Value =
            serde_json::from_str(&run("topo", &args(&["--from", &path, "--json"])).unwrap())
                .unwrap();
        assert_eq!(parsed["source"].as_str(), Some("replay"));
        assert_eq!(parsed["cores"].as_u64(), Some(8));

        let g = tmp("g10.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "10", "--state", "64", "-o", &g]),
        )
        .unwrap();
        let out = run(
            "run-dag",
            &args(&[
                &g,
                "--m",
                "1024",
                "--workers",
                "4",
                "--placement",
                "llc",
                "--topo-from",
                &path,
                "--json",
            ]),
        )
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["placement"].as_str(), Some("llc"));
        // Mutually exclusive with --topo; garbage files are errors.
        assert!(run("topo", &args(&["--topo", "1x1x1", "--from", &path])).is_err());
        let bad = tmp("not-a-dump.json");
        std::fs::write(&bad, "{\"clusters\": 7}").unwrap();
        assert!(run("topo", &args(&["--from", &bad])).is_err());
        std::fs::remove_file(bad).ok();
        std::fs::remove_file(path).ok();
        std::fs::remove_file(g).ok();
    }

    #[test]
    fn topo_prints_synthetic_and_discovered() {
        let out = run("topo", &args(&["--topo", "2x2x2"])).unwrap();
        assert!(
            out.contains("synthetic: 2 nodes x 4 llc clusters x 8 cores"),
            "{out}"
        );
        assert!(out.contains("llc 0: cpus 0-1"), "{out}");
        let out = run("topo", &args(&["--topo", "2x2x2", "--json"])).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["source"].as_str(), Some("synthetic"));
        assert_eq!(parsed["cores"].as_u64(), Some(8));
        assert_eq!(parsed["clusters"][3]["node"].as_u64(), Some(1));
        // Host discovery always yields at least one core.
        let out = run("topo", &args(&["--json"])).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed["cores"].as_u64().unwrap() >= 1);
        assert!(run("topo", &args(&["--topo", "junk"])).is_err());
    }

    #[test]
    fn compare_prints_table() {
        let path = tmp("g4.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "16", "--state", "128", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "compare",
            &args(&[&path, "--m", "1024", "--outputs", "300"]),
        )
        .unwrap();
        assert!(out.contains("single-appearance"));
        assert!(out.contains("misses/output"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn app_list_and_errors() {
        let out = run("gen", &args(&["app", "list"])).unwrap();
        assert!(out.contains("fm-radio"));
        assert!(run("gen", &args(&["app", "nope"])).is_err());
        assert!(run("frobnicate", &args(&[])).is_err());
        assert!(run("help", &args(&[])).unwrap().contains("USAGE"));
    }

    #[test]
    fn autotune_and_fuse_commands() {
        let path = tmp("g6.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "16", "--state", "96", "-o", &path]),
        )
        .unwrap();
        let out = run(
            "autotune",
            &args(&[&path, "--m", "1024", "--outputs", "300"]),
        )
        .unwrap();
        assert!(out.contains("winner:"), "{out}");

        let fused_path = tmp("g6-fused.json");
        let out = run("fuse", &args(&[&path, "--m", "1024", "-o", &fused_path])).unwrap();
        assert!(out.contains("fused 16 modules into"), "{out}");
        // Fused graph is loadable and smaller.
        let report = run("analyze", &args(&[&fused_path])).unwrap();
        assert!(report.contains("pipeline     : true"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(fused_path).ok();
    }

    #[test]
    fn dot_command() {
        let path = tmp("g5.json");
        run(
            "gen",
            &args(&["pipeline", "--len", "3", "--state", "8", "-o", &path]),
        )
        .unwrap();
        let out = run("dot", &args(&[&path])).unwrap();
        assert!(out.starts_with("digraph"));
        std::fs::remove_file(path).ok();
    }

    /// Rebuild a bench record with its timing metrics scaled (wall and
    /// stall × `factor`, throughput ÷ `factor`) — a synthetic
    /// faster/slower baseline for gate tests, built without touching
    /// the environment.
    fn scale_bench_record(record: &serde_json::Value, factor: f64) -> serde_json::Value {
        let series: Vec<serde_json::Value> = match &record["series"] {
            serde_json::Value::Array(s) => s
                .iter()
                .map(|x| {
                    let metric = x["metric"].as_str().unwrap_or("?");
                    let sc = match metric {
                        "wall_ms" | "stall_ms" => factor,
                        "items_per_sec" => 1.0 / factor,
                        _ => 1.0,
                    };
                    let runs: Vec<serde_json::Value> = match &x["runs"] {
                        serde_json::Value::Array(r) => r
                            .iter()
                            .map(|v| match v.as_f64() {
                                Some(f) => serde_json::json!(f * sc),
                                None => serde_json::Value::Null,
                            })
                            .collect(),
                        _ => Vec::new(),
                    };
                    serde_json::json!({
                        "workload": x["workload"].clone(),
                        "cell": x["cell"].clone(),
                        "metric": metric,
                        "runs": runs,
                        "mean": x["mean"].as_f64().unwrap_or(0.0) * sc,
                        "stddev": x["stddev"].clone(),
                    })
                })
                .collect(),
            _ => Vec::new(),
        };
        serde_json::json!({
            "schema": record["schema"].clone(),
            "sweep": record["sweep"].clone(),
            "timestamp": record["timestamp"].clone(),
            "git_rev": record["git_rev"].clone(),
            "fingerprint": record["fingerprint"].clone(),
            "series": series,
        })
    }

    #[test]
    fn bench_seeds_reads_unchanged_and_gates_on_regression() {
        let store = tmp("bench-history.ndjson");
        std::fs::remove_file(&store).ok();
        let base = [
            "--store",
            &store,
            "--apps",
            "fm-radio",
            "--repeats",
            "2",
            "--rounds",
            "2",
            "--timestamp",
            "1",
            "--tolerance",
            "1.5",
        ];
        // First run on an empty store seeds the history.
        let out = run("bench", &args(&base)).unwrap();
        assert!(out.contains("no matching baseline"), "{out}");
        assert!(out.contains("appended to"), "{out}");
        // Second run on the same tree: with a generous tolerance every
        // verdict is unchanged and the gate passes.
        let mut again: Vec<&str> = base.to_vec();
        again.push("--check");
        let out = run("bench", &args(&again)).unwrap();
        assert!(out.contains("verdict: ok"), "{out}");
        assert!(
            !out.contains("regressed,") || out.contains("0 regressed"),
            "{out}"
        );
        // Doctor the recorded history into a 5x-faster baseline: the
        // fresh (honest) run now reads as a large significant
        // regression and `--check` must fail loudly.
        let history = std::fs::read_to_string(&store).unwrap();
        let last = history
            .lines()
            .rev()
            .find(|l| !l.trim().is_empty())
            .unwrap();
        let record: serde_json::Value = serde_json::from_str(last).unwrap();
        let fast = scale_bench_record(&record, 1.0 / 5.0);
        let doctored = tmp("bench-doctored.ndjson");
        std::fs::write(
            &doctored,
            format!("{}\n", serde_json::to_string(&fast).unwrap()),
        )
        .unwrap();
        let err = run(
            "bench",
            &args(&[
                "--store",
                &store,
                "--baseline",
                &doctored,
                "--apps",
                "fm-radio",
                "--repeats",
                "2",
                "--rounds",
                "2",
                "--timestamp",
                "2",
                "--tolerance",
                "1.5",
                "--no-append",
                "--check",
            ]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("REGRESSED"), "{err}");
        std::fs::remove_file(store).ok();
        std::fs::remove_file(doctored).ok();
    }
}
