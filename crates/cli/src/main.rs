//! `ccs` — the command-line entry point.

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = match argv.next() {
        Some(c) => c,
        None => {
            eprintln!("{}", ccs_cli::commands::usage());
            std::process::exit(2);
        }
    };
    let args = match ccs_cli::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match ccs_cli::run(&cmd, &args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
