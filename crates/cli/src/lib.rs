//! # ccs-cli — command-line front end
//!
//! A small, dependency-light CLI over the workspace:
//!
//! ```text
//! ccs gen pipeline --len 24 --state 128 -o graph.json
//! ccs gen app fm-radio -o fm.json
//! ccs analyze graph.json
//! ccs partition graph.json --m 1024 --b 16 [--strategy dp|greedy2m|dag|exact]
//! ccs simulate graph.json --m 1024 --b 16 --outputs 1000 [--json]
//! ccs compare graph.json --m 1024 --b 16 --outputs 1000
//! ccs dot graph.json
//! ```
//!
//! Graphs are serialized [`ccs_graph::StreamGraph`] JSON.

pub mod args;
pub mod commands;

pub use args::Args;
pub use commands::run;
