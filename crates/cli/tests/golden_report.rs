//! Golden-file round trips for the versioned result documents.
//!
//! The fixtures are checked-in outputs of real runs: a `ccs-trace/v1`
//! export, the `ccs-analysis/v1` document `ccs analyze` derives from
//! it, and a `ccs-sweep/v1` grid. Each must keep rendering through
//! `ccs report` exactly as the checked-in text, and the analyzer must
//! keep regenerating the analysis fixture from the trace fixture —
//! so a schema or renderer change that would orphan saved documents
//! fails here instead of in a user's results directory.

use ccs_cli::{run, Args};

fn args(words: &[&str]) -> Args {
    Args::parse(words.iter().map(|s| s.to_string())).unwrap()
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).expect("fixture exists")
}

#[test]
fn report_renders_each_schema_exactly_as_checked_in() {
    // `ccs` prints with a trailing newline the returned string lacks;
    // compare modulo that.
    for (doc, text) in [
        ("sweep-v1.json", "sweep-v1.txt"),
        ("trace-v1.json", "trace-v1.txt"),
        ("analysis-v1.json", "analysis-v1.txt"),
        ("bench-v1.json", "bench-v1.txt"),
    ] {
        let rendered = run("report", &args(&[&fixture(doc)])).unwrap();
        assert_eq!(
            rendered.trim_end(),
            golden(text).trim_end(),
            "{doc} no longer renders as {text}"
        );
    }
}

#[test]
fn analyze_regenerates_the_analysis_fixture_from_the_trace() {
    let out = run("analyze", &args(&[&fixture("trace-v1.json"), "--json"])).unwrap();
    assert_eq!(
        out.trim_end(),
        golden("analysis-v1.json").trim_end(),
        "ccs analyze drifted from the checked-in ccs-analysis/v1 fixture"
    );
}

#[test]
fn analyze_text_mode_matches_the_report_render() {
    // The two user-facing ways to read an analysis — `ccs analyze
    // TRACE` directly and `ccs report` over the saved document — must
    // agree.
    let direct = run("analyze", &args(&[&fixture("trace-v1.json")])).unwrap();
    assert_eq!(direct.trim_end(), golden("analysis-v1.txt").trim_end());
}

#[test]
fn adaptive_trace_analysis_keeps_its_migration_block() {
    // The adapt fixture is a checked-in `ccs trace --adapt` run on the
    // phase-shift perturbation workload: its timeline carries a live
    // segment handoff as a `"migration"` instant, and `ccs analyze`
    // must keep recovering and attributing it. A renderer or schema
    // change that silently drops saved migrations fails here.
    let direct = run("analyze", &args(&[&fixture("adapt-v1.json")])).unwrap();
    assert!(
        direct.contains("migrations (live handoffs):"),
        "migration block missing:\n{direct}"
    );
    assert_eq!(
        direct.trim_end(),
        golden("adapt-v1.txt").trim_end(),
        "ccs analyze drifted from the checked-in adaptive-trace render"
    );
    // The raw document still reads back through `ccs report` as a
    // plain trace summary.
    let summary = run("report", &args(&[&fixture("adapt-v1.json")])).unwrap();
    assert!(summary.contains("trace: phase-shift"), "{summary}");
}

#[test]
fn fixture_documents_carry_their_schema_tags() {
    for (doc, schema) in [
        ("sweep-v1.json", "ccs-sweep/v1"),
        ("trace-v1.json", "ccs-trace/v1"),
        ("adapt-v1.json", "ccs-trace/v1"),
        ("analysis-v1.json", "ccs-analysis/v1"),
        ("bench-v1.json", "ccs-bench/v1"),
    ] {
        let v: serde_json::Value = serde_json::from_str(&golden(doc)).unwrap();
        assert_eq!(v["schema"].as_str(), Some(schema), "{doc}");
    }
}

#[test]
fn report_history_renders_the_trend_fixture_exactly() {
    // Both spellings — the explicit `--history FILE` flag and plain
    // `ccs report FILE` auto-detecting NDJSON — must produce the
    // checked-in trend text, fingerprint grouping included.
    let flagged = run(
        "report",
        &args(&["--history", &fixture("bench-history.ndjson")]),
    )
    .unwrap();
    assert_eq!(flagged.trim_end(), golden("bench-history.txt").trim_end());
    let detected = run("report", &args(&[&fixture("bench-history.ndjson")])).unwrap();
    assert_eq!(detected.trim_end(), golden("bench-history.txt").trim_end());
}
