//! Analytic cost model: predict a partitioned schedule's misses without
//! simulating it.
//!
//! Lemma 4 / Lemma 8 describe exactly where a partitioned schedule's
//! misses come from; this module turns that accounting into a closed-form
//! predictor:
//!
//! * **state loads** — each component's state is swept once per
//!   high-level round: `rounds · Σᵥ ⌈s(v)/B⌉` (block-aligned regions);
//! * **cross-edge traffic** — every item crossing a component boundary is
//!   written once and read once through ring buffers:
//!   `rounds · Σₑ 2·⌈traffic_round(e)/B⌉` (+1 block per wrap);
//! * **internal buffers** — resident alongside the state, charged once
//!   per round per block like state;
//! * **tapes** — `rounds · (T_in + T_out)/B` sequential words.
//!
//! Experiments (and a unit test here) check the predictor against the
//! simulator; agreement within a small constant validates that the
//! implementation really is the schedule the analysis talks about.

use ccs_cachesim::CacheParams;
use ccs_graph::{RateAnalysis, Ratio, StreamGraph};
use ccs_partition::Partition;

/// Predicted misses for one configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    pub state_loads: f64,
    pub cross_traffic: f64,
    pub internal_buffers: f64,
    pub tapes: f64,
}

impl CostBreakdown {
    pub fn total(&self) -> f64 {
        self.state_loads + self.cross_traffic + self.internal_buffers + self.tapes
    }

    /// Amortized per input item.
    pub fn per_input(&self, inputs: u64) -> f64 {
        self.total() / inputs.max(1) as f64
    }
}

/// Predict the misses of the static partitioned schedule run for
/// `rounds` rounds of granularity `t` (source firings per round) on a
/// cache `params`, assuming every component (state + internal buffers +
/// one block per incident cross edge) fits in cache — the Lemma 8
/// degree-limited regime. Outside that regime the prediction is a lower
/// estimate.
pub fn predict_partitioned(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    params: CacheParams,
    t: u64,
    rounds: u64,
) -> CostBreakdown {
    let b = params.block as f64;
    let source = ra.source.expect("unique source");
    let qs = ra.q(source) as f64;
    let rounds_f = rounds as f64;

    // State: every node's block-aligned region, once per round.
    let state_loads: f64 = g
        .node_ids()
        .map(|v| (g.state(v).max(1) as f64 / b).ceil())
        .sum::<f64>()
        * rounds_f;

    // Cross edges: traffic per round = t·gain(e) items, written once and
    // read once; ring wrap adds at most one block per direction.
    let mut cross_traffic = 0.0;
    let mut internal_buffers = 0.0;
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let traffic_round = t as f64 * (ra.q(edge.src) as f64 * edge.produce as f64) / qs;
        if p.component_of(edge.src) != p.component_of(edge.dst) {
            cross_traffic += rounds_f * 2.0 * (traffic_round / b + 1.0);
        } else {
            // Internal ring of minBuf size: like state, it stays resident
            // while the component runs; charge one sweep per round.
            let cap = ccs_graph::buffers::min_buf_safe(g, e) as f64;
            internal_buffers += rounds_f * (cap / b).ceil();
        }
    }

    // Tapes: source reads one word per firing, sink writes one per
    // firing.
    let sink = ra.sink.expect("unique sink");
    let t_in = t as f64;
    let t_out = t as f64 * ra.q(sink) as f64 / qs;
    let tapes = rounds_f * (t_in + t_out) / b;

    CostBreakdown {
        state_loads,
        cross_traffic,
        internal_buffers,
        tapes,
    }
}

/// Predict the misses of the single-appearance baseline for `iterations`
/// steady-state iterations: when the total working set exceeds the cache,
/// every iteration reloads all state and all buffers.
pub fn predict_single_appearance(
    g: &StreamGraph,
    ra: &RateAnalysis,
    params: CacheParams,
    iterations: u64,
) -> f64 {
    let b = params.block as f64;
    let state_blocks: f64 = g
        .node_ids()
        .map(|v| (g.state(v).max(1) as f64 / b).ceil())
        .sum();
    let buffer_blocks: f64 = g
        .edge_ids()
        .map(|e| (ra.edge_traffic(g, e) as f64 / b).ceil() + 1.0)
        .sum();
    let footprint = g.total_state() as f64
        + g.edge_ids()
            .map(|e| ra.edge_traffic(g, e) as f64)
            .sum::<f64>();
    let source = ra.source.expect("unique source");
    let sink = ra.sink.expect("unique sink");
    let tape = (ra.q(source) + ra.q(sink)) as f64 / b;
    if footprint <= params.capacity as f64 {
        // Everything fits: compulsory only, plus tape streaming.
        state_blocks + buffer_blocks + iterations as f64 * tape
    } else {
        iterations as f64 * (state_blocks + 2.0 * buffer_blocks + tape)
    }
}

/// Accuracy report: predicted vs measured.
#[derive(Clone, Copy, Debug)]
pub struct Accuracy {
    pub predicted: f64,
    pub measured: u64,
}

impl Accuracy {
    /// measured / predicted (1.0 = perfect).
    pub fn ratio(&self) -> f64 {
        self.measured as f64 / self.predicted.max(1e-9)
    }
}

/// Convenience: the bandwidth-based headline prediction of the paper,
/// `(T_total/B)·bandwidth + state term`, per input.
pub fn headline_per_input(g: &StreamGraph, bandwidth: Ratio, params: CacheParams) -> f64 {
    let b = params.block as f64;
    2.0 * bandwidth.to_f64() / b + g.total_state() as f64 / (params.capacity as f64 * b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOptions, Executor};
    use crate::partitioned;
    use ccs_graph::gen::{self, PipelineCfg, StateDist};
    use ccs_partition::pipeline as ppart;

    #[test]
    fn predictor_matches_simulator_within_2x() {
        for seed in 0..8u64 {
            let cfg = PipelineCfg {
                len: 24,
                state: StateDist::Uniform(32, 128),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let m = 1024u64;
            let params = CacheParams::new(8 * m, 16);
            let pp = ppart::greedy_theorem5(&g, &ra, m).unwrap();
            let rounds = 3u64;
            let run = partitioned::inhomogeneous(&g, &ra, &pp.partition, m, rounds).unwrap();
            let t = partitioned::granularity_t(&g, &ra, m).unwrap();

            let mut ex = Executor::new(
                &g,
                &ra,
                run.capacities.clone(),
                params,
                ExecOptions::default(),
            );
            ex.run(&run.firings).unwrap();
            let measured = ex.report().stats.misses;

            let predicted = predict_partitioned(&g, &ra, &pp.partition, params, t, rounds).total();
            let acc = Accuracy {
                predicted,
                measured,
            };
            assert!(
                acc.ratio() > 0.3 && acc.ratio() < 2.0,
                "seed {seed}: measured {measured} vs predicted {predicted:.0} (ratio {:.2})",
                acc.ratio()
            );
        }
    }

    #[test]
    fn sas_predictor_tracks_thrashing_regime() {
        let g = gen::pipeline_uniform(32, 256); // 8192 words
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let params = CacheParams::new(2048, 16);
        let iters = 512u64;
        let run = crate::baseline::single_appearance(&g, &ra, iters);
        let mut ex = Executor::new(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&run.firings).unwrap();
        let measured = ex.report().stats.misses;
        let predicted = predict_single_appearance(&g, &ra, params, iters);
        let ratio = measured as f64 / predicted;
        assert!(
            (0.3..3.0).contains(&ratio),
            "measured {measured} vs predicted {predicted:.0}"
        );
    }

    #[test]
    fn breakdown_components_positive_and_sum() {
        let g = gen::pipeline_uniform(8, 64);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = ccs_partition::dag_greedy::greedy_topo(&g, 128);
        let params = CacheParams::new(1024, 16);
        let c = predict_partitioned(&g, &ra, &p, params, 1024, 2);
        assert!(c.state_loads > 0.0);
        assert!(c.cross_traffic > 0.0);
        assert!(c.tapes > 0.0);
        let total = c.total();
        assert!(
            (total - (c.state_loads + c.cross_traffic + c.internal_buffers + c.tapes)).abs() < 1e-9
        );
        assert!(c.per_input(2048) > 0.0);
    }

    #[test]
    fn headline_matches_paper_form() {
        let g = gen::pipeline_uniform(16, 64);
        let params = CacheParams::new(512, 16);
        let h = headline_per_input(&g, Ratio::integer(3), params);
        // 2*3/16 + 1024/(512*16) = 0.375 + 0.125
        assert!((h - 0.5).abs() < 1e-9);
    }
}
