//! # ccs-sched — schedulers and the legality-checking executor
//!
//! Scheduling machinery for the SPAA 2012 partitioned-scheduling paper:
//!
//! * [`exec::Executor`] — the symbolic executor: runs a firing sequence
//!   against the DAM-model cache simulator (`ccs-cachesim`), enforcing
//!   buffer capacities and firing rules, and attributing misses to module
//!   state, channel buffers, and the I/O tapes.
//! * [`partitioned`] — the paper's two-level schedulers (§3):
//!   homogeneous (`T = M`), inhomogeneous (granularity `T`), and the
//!   dynamic pipeline scheduler (half-full/half-empty continuity rule).
//! * [`baseline`] — literature baselines: single-appearance steady-state,
//!   demand-driven minimal-buffer, Sermulins-style execution scaling, and
//!   Kohli-style greedy chains.
//! * [`plan::SchedRun`] — a schedule plus the channel capacities it needs.
//! * [`cost`] — the Lemma 4/8 accounting as a closed-form miss predictor,
//!   validated against the simulator.

pub mod baseline;
pub mod cost;
pub mod exec;
pub mod partitioned;
pub mod plan;

pub use exec::{EvalReport, ExecError, ExecOptions, Executor, Layout};
pub use partitioned::PartSchedError;
pub use plan::SchedRun;
