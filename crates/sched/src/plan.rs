//! A scheduler's output: the firing sequence plus the buffer capacities
//! it requires.

use ccs_graph::NodeId;
use serde::{Deserialize, Serialize};

/// A concrete schedule: an ordered firing sequence and the per-edge
/// channel capacities (in items) under which it is legal.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchedRun {
    /// Human-readable scheduler name (appears in experiment tables).
    pub label: String,
    /// The firing sequence.
    pub firings: Vec<NodeId>,
    /// Channel capacity per edge, in items.
    pub capacities: Vec<u64>,
}

impl SchedRun {
    /// Number of firings of `v` in the sequence.
    pub fn count(&self, v: NodeId) -> u64 {
        self.firings.iter().filter(|&&x| x == v).count() as u64
    }

    /// Total words of channel capacity (the buffer-memory footprint).
    pub fn buffer_words(&self) -> u64 {
        self.capacities.iter().sum()
    }
}
