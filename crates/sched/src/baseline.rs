//! Baseline schedulers from the streaming literature.
//!
//! These are the comparison points the paper's partitioned schedules are
//! measured against:
//!
//! * [`single_appearance`] — the classic single-appearance steady-state
//!   schedule (Lee–Messerschmitt): each steady-state iteration fires the
//!   modules in topological order, `q(v)` times consecutively each.
//! * [`demand_driven`] — minimal-buffer operation: always fire the
//!   topologically deepest fireable module, with `minBuf`-sized channels.
//! * [`scaled_sas`] — Sermulins et al.'s *execution scaling*: a
//!   single-appearance schedule scaled by a factor `s` (each module fires
//!   `s·q(v)` times back to back), with [`choose_scale`] picking the
//!   largest `s` whose buffer footprint still fits in cache.
//! * [`kohli_greedy`] — Kohli's local heuristic for chains: run each
//!   module until its input is exhausted or its output fills, then move
//!   to its successor; buffers are fixed slices of the cache.

use crate::plan::SchedRun;
use ccs_graph::{buffers, NodeId, RateAnalysis, StreamGraph};

/// Capacities that let one steady-state iteration run as a
/// single-appearance schedule: each edge holds a full iteration of
/// traffic.
pub fn sas_capacities(g: &StreamGraph, ra: &RateAnalysis, scale: u64) -> Vec<u64> {
    g.edge_ids()
        .map(|e| ra.edge_traffic(g, e) * scale)
        .collect()
}

/// Single-appearance steady-state schedule for `iterations` iterations.
///
/// Fires `v` exactly `q(v)` times consecutively, nodes in topological
/// order, per iteration. Requires per-edge capacity of one iteration's
/// traffic (see [`sas_capacities`]).
pub fn single_appearance(g: &StreamGraph, ra: &RateAnalysis, iterations: u64) -> SchedRun {
    scaled_sas(g, ra, 1, iterations)
}

/// Sermulins-style scaled single-appearance schedule: per iteration, each
/// module fires `scale·q(v)` times consecutively. One iteration of the
/// scaled schedule covers `scale` steady-state iterations.
pub fn scaled_sas(g: &StreamGraph, ra: &RateAnalysis, scale: u64, iterations: u64) -> SchedRun {
    assert!(scale >= 1);
    let order = ccs_graph::topo::topo_order(g);
    let per_iter: u64 = order.iter().map(|&v| ra.q(v) * scale).sum();
    let mut firings = Vec::with_capacity(usize::try_from(per_iter * iterations).expect("fits"));
    for _ in 0..iterations {
        for &v in &order {
            for _ in 0..ra.q(v) * scale {
                firings.push(v);
            }
        }
    }
    SchedRun {
        label: if scale == 1 {
            "single-appearance".into()
        } else {
            format!("scaled-sas(x{scale})")
        },
        firings,
        capacities: sas_capacities(g, ra, scale),
    }
}

/// Largest execution-scaling factor whose total buffer footprint fits in
/// `budget` words (Sermulins et al. pick the largest scaling that avoids
/// "catastrophic spills"). At least 1.
pub fn choose_scale(g: &StreamGraph, ra: &RateAnalysis, budget: u64) -> u64 {
    let per_iter: u64 = g.edge_ids().map(|e| ra.edge_traffic(g, e)).sum();
    if per_iter == 0 {
        return 1;
    }
    (budget / per_iter).max(1)
}

/// Demand-driven schedule with minimal (`p + c`) buffers: repeatedly fire
/// the topologically deepest module that can fire, until the sink has
/// fired `sink_firings` times.
pub fn demand_driven(g: &StreamGraph, ra: &RateAnalysis, sink_firings: u64) -> SchedRun {
    let capacities: Vec<u64> = g.edge_ids().map(|e| buffers::min_buf_safe(g, e)).collect();
    let order = ccs_graph::topo::topo_order(g);
    let mut occupancy = vec![0u64; g.edge_count()];
    let sink = ra.sink.expect("demand-driven needs a unique sink");
    let mut fired_sink = 0u64;
    let mut firings = Vec::new();

    let can_fire = |occupancy: &[u64], v: NodeId| -> bool {
        g.in_edges(v)
            .iter()
            .all(|&e| occupancy[e.idx()] >= g.edge(e).consume)
            && g.out_edges(v)
                .iter()
                .all(|&e| occupancy[e.idx()] + g.edge(e).produce <= capacities[e.idx()])
    };

    while fired_sink < sink_firings {
        // Deepest fireable module first keeps buffers near empty.
        let v = order
            .iter()
            .rev()
            .copied()
            .find(|&v| can_fire(&occupancy, v))
            .expect("source can always fire with minBuf-safe capacities");
        for &e in g.in_edges(v) {
            occupancy[e.idx()] -= g.edge(e).consume;
        }
        for &e in g.out_edges(v) {
            occupancy[e.idx()] += g.edge(e).produce;
        }
        if v == sink {
            fired_sink += 1;
        }
        firings.push(v);
    }
    SchedRun {
        label: "demand-driven".into(),
        firings,
        capacities,
    }
}

/// Phased schedule (Karczmarek et al., cited in §6): one steady-state
/// iteration is split into *phases*; in each phase every module that can
/// fire does so once, repeating until the iteration's quota is met. The
/// breadth-synchronous structure keeps buffers near `minBuf` like
/// demand-driven scheduling, but with a statically regular shape.
pub fn phased(g: &StreamGraph, ra: &RateAnalysis, iterations: u64) -> SchedRun {
    let capacities: Vec<u64> = g
        .edge_ids()
        .map(|e| 2 * buffers::min_buf_safe(g, e))
        .collect();
    let order = ccs_graph::topo::topo_order(g);
    let mut occupancy = vec![0u64; g.edge_count()];
    let mut firings = Vec::new();

    let can_fire = |occupancy: &[u64], v: NodeId| -> bool {
        g.in_edges(v)
            .iter()
            .all(|&e| occupancy[e.idx()] >= g.edge(e).consume)
            && g.out_edges(v)
                .iter()
                .all(|&e| occupancy[e.idx()] + g.edge(e).produce <= capacities[e.idx()])
    };

    for _ in 0..iterations {
        let mut remaining: Vec<u64> = g.node_ids().map(|v| ra.q(v)).collect();
        let mut left: u64 = remaining.iter().sum();
        while left > 0 {
            let mut fired_this_phase = false;
            for &v in &order {
                if remaining[v.idx()] > 0 && can_fire(&occupancy, v) {
                    for &e in g.in_edges(v) {
                        occupancy[e.idx()] -= g.edge(e).consume;
                    }
                    for &e in g.out_edges(v) {
                        occupancy[e.idx()] += g.edge(e).produce;
                    }
                    remaining[v.idx()] -= 1;
                    left -= 1;
                    firings.push(v);
                    fired_this_phase = true;
                }
            }
            assert!(
                fired_this_phase,
                "phased schedule wedged; capacities too tight"
            );
        }
    }
    SchedRun {
        label: "phased".into(),
        firings,
        capacities,
    }
}

/// Kohli-style greedy chain heuristic: give each channel an equal slice
/// of a `buffer_budget` (at least `p + c`), then repeatedly take the
/// first fireable module in chain order and run it until it blocks.
///
/// Kohli's heuristic makes local "continue or advance" decisions from a
/// cache-miss estimate; run-until-blocked with cache-sized buffers is the
/// canonical simplification (it maximizes consecutive firings per module
/// subject to the buffer budget, with no global planning) and is
/// documented as such in DESIGN.md.
pub fn kohli_greedy(
    g: &StreamGraph,
    ra: &RateAnalysis,
    buffer_budget: u64,
    sink_firings: u64,
) -> SchedRun {
    let order = g
        .pipeline_order()
        .expect("kohli heuristic applies to pipelines");
    let n_edges = g.edge_count().max(1);
    let slice = buffer_budget / n_edges as u64;
    let capacities: Vec<u64> = g
        .edge_ids()
        .map(|e| slice.max(buffers::min_buf_safe(g, e)))
        .collect();
    let sink = ra.sink.expect("pipeline has a sink");
    let mut occupancy = vec![0u64; g.edge_count()];
    let mut fired_sink = 0u64;
    let mut firings = Vec::new();

    let can_fire = |occupancy: &[u64], v: NodeId| -> bool {
        g.in_edges(v)
            .iter()
            .all(|&e| occupancy[e.idx()] >= g.edge(e).consume)
            && g.out_edges(v)
                .iter()
                .all(|&e| occupancy[e.idx()] + g.edge(e).produce <= capacities[e.idx()])
    };

    while fired_sink < sink_firings {
        let mut progressed = false;
        for &v in &order {
            let mut ran = false;
            while can_fire(&occupancy, v) {
                for &e in g.in_edges(v) {
                    occupancy[e.idx()] -= g.edge(e).consume;
                }
                for &e in g.out_edges(v) {
                    occupancy[e.idx()] += g.edge(e).produce;
                }
                if v == sink {
                    fired_sink += 1;
                }
                firings.push(v);
                ran = true;
                if v == sink && fired_sink >= sink_firings {
                    break;
                }
            }
            progressed |= ran;
            if fired_sink >= sink_firings {
                break;
            }
        }
        assert!(progressed, "kohli schedule must make progress each sweep");
    }
    SchedRun {
        label: "kohli-greedy".into(),
        firings,
        capacities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOptions, Executor};
    use ccs_cachesim::CacheParams;
    use ccs_graph::gen::{self, PipelineCfg, StateDist};

    fn check_runs(g: &StreamGraph, ra: &RateAnalysis, run: &SchedRun) {
        let params = CacheParams::new(1 << 14, 16);
        let mut ex = Executor::new(
            g,
            ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&run.firings)
            .unwrap_or_else(|e| panic!("{}: illegal schedule: {e}", run.label));
    }

    #[test]
    fn sas_is_legal_on_random_pipelines() {
        for seed in 0..15u64 {
            let g = gen::pipeline(&PipelineCfg::default(), seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let run = single_appearance(&g, &ra, 3);
            check_runs(&g, &ra, &run);
        }
    }

    #[test]
    fn sas_is_legal_on_random_dags() {
        use ccs_graph::gen::LayeredCfg;
        let cfg = LayeredCfg {
            max_q: 3,
            ..LayeredCfg::default()
        };
        for seed in 0..15u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let run = single_appearance(&g, &ra, 2);
            check_runs(&g, &ra, &run);
        }
    }

    #[test]
    fn sas_fires_sink_q_times_per_iteration() {
        let g = gen::pipeline(&PipelineCfg::default(), 3);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let sink = ra.sink.unwrap();
        let run = single_appearance(&g, &ra, 5);
        let count = run.firings.iter().filter(|&&v| v == sink).count() as u64;
        assert_eq!(count, 5 * ra.q(sink));
    }

    #[test]
    fn scaled_sas_matches_scale_times_sas() {
        let g = gen::pipeline(&PipelineCfg::default(), 7);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let s1 = single_appearance(&g, &ra, 4);
        let s2 = scaled_sas(&g, &ra, 4, 1);
        assert_eq!(s1.firings.len(), s2.firings.len());
        check_runs(&g, &ra, &s2);
    }

    #[test]
    fn choose_scale_respects_budget() {
        let g = gen::pipeline(&PipelineCfg::default(), 11);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let per_iter: u64 = g.edge_ids().map(|e| ra.edge_traffic(&g, e)).sum();
        let s = choose_scale(&g, &ra, 10 * per_iter + 1);
        assert_eq!(s, 10);
        assert_eq!(choose_scale(&g, &ra, 0), 1, "scale is at least 1");
    }

    #[test]
    fn demand_driven_runs_with_min_buffers() {
        for seed in 0..10u64 {
            let g = gen::pipeline(&PipelineCfg::default(), seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let run = demand_driven(&g, &ra, 5);
            check_runs(&g, &ra, &run);
            let sink = ra.sink.unwrap();
            assert_eq!(run.firings.iter().filter(|&&v| v == sink).count(), 5);
        }
    }

    #[test]
    fn demand_driven_works_on_dags() {
        use ccs_graph::gen::LayeredCfg;
        let cfg = LayeredCfg {
            max_q: 2,
            ..LayeredCfg::default()
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let run = demand_driven(&g, &ra, 4);
            check_runs(&g, &ra, &run);
        }
    }

    #[test]
    fn kohli_terminates_and_is_legal() {
        for seed in 0..10u64 {
            let g = gen::pipeline(
                &PipelineCfg {
                    len: 12,
                    state: StateDist::Uniform(16, 128),
                    max_q: 3,
                    max_rate_scale: 2,
                },
                seed,
            );
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let run = kohli_greedy(&g, &ra, 512, 20);
            check_runs(&g, &ra, &run);
        }
    }

    #[test]
    fn phased_is_legal_and_balanced() {
        use ccs_graph::gen::LayeredCfg;
        let cfg = LayeredCfg {
            max_q: 3,
            ..LayeredCfg::default()
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let run = phased(&g, &ra, 3);
            check_runs(&g, &ra, &run);
            // Exactly 3 steady-state iterations of work.
            let expected: u64 = ra.repetitions.iter().sum::<u64>() * 3;
            assert_eq!(run.firings.len() as u64, expected, "seed {seed}");
        }
    }

    #[test]
    fn phased_buffers_are_small() {
        let g = gen::pipeline(&PipelineCfg::default(), 5);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = phased(&g, &ra, 2);
        for e in g.edge_ids() {
            assert_eq!(run.capacities[e.idx()], 2 * buffers::min_buf_safe(&g, e));
        }
    }

    #[test]
    fn demand_driven_buffers_stay_minimal() {
        // The whole point of demand-driven: capacities are minBuf-safe.
        let g = gen::pipeline(&PipelineCfg::default(), 2);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = demand_driven(&g, &ra, 3);
        for e in g.edge_ids() {
            assert_eq!(run.capacities[e.idx()], buffers::min_buf_safe(&g, e));
        }
    }
}
