//! The symbolic executor: runs a firing sequence against the DAM-model
//! cache simulator, enforcing schedule legality.
//!
//! Every firing of a module `v`:
//!
//! 1. touches all `s(v)` words of `v`'s state (the paper: "to fire a
//!    module, the entire state must be loaded into cache");
//! 2. reads `in(u,v)` items from each input channel's ring buffer;
//! 3. writes `out(v,w)` items to each output channel's ring buffer.
//!
//! The source additionally reads one word per firing from an unbounded
//! *input tape* and the sink writes one word per firing to an *output
//! tape*, so the `Θ(T/B)` cost of streaming the data itself is charged
//! identically to every scheduler.
//!
//! Firings that would underflow an input buffer or overflow an output
//! buffer's declared capacity are rejected — a reported miss count always
//! corresponds to a feasible execution.

use ccs_cachesim::{
    AddressSpace, BlockCache, CacheParams, CacheStats, LruCache, MemorySim, Region,
};
use ccs_graph::{EdgeId, NodeId, RateAnalysis, StreamGraph};
use std::fmt;

/// Base address of the input tape (above any realistic layout).
const INPUT_TAPE_BASE: u64 = 1 << 40;
/// Base address of the output tape.
const OUTPUT_TAPE_BASE: u64 = 1 << 41;

/// Why a firing was illegal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Input channel had fewer items than the module consumes.
    Underflow {
        node: NodeId,
        edge: EdgeId,
        have: u64,
        need: u64,
    },
    /// Output channel lacked space for the module's production.
    Overflow {
        node: NodeId,
        edge: EdgeId,
        have: u64,
        capacity: u64,
        produce: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Underflow {
                node,
                edge,
                have,
                need,
            } => write!(
                f,
                "firing {node:?} underflows {edge:?}: have {have}, need {need}"
            ),
            ExecError::Overflow {
                node,
                edge,
                have,
                capacity,
                produce,
            } => write!(
                f,
                "firing {node:?} overflows {edge:?}: {have}+{produce} > capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Memory layout of a streaming graph: one block-aligned region per
/// module state and per channel ring buffer.
#[derive(Clone, Debug)]
pub struct Layout {
    pub state: Vec<Region>,
    pub buffer: Vec<Region>,
    /// Total words allocated (excludes the tapes).
    pub footprint: u64,
}

impl Layout {
    /// Lay out `g` with the given per-edge buffer capacities (in items).
    pub fn build(g: &StreamGraph, capacities: &[u64], block: u64) -> Layout {
        assert_eq!(capacities.len(), g.edge_count());
        let mut space = AddressSpace::new(block);
        let state = g.node_ids().map(|v| space.alloc(g.state(v))).collect();
        let buffer = g
            .edge_ids()
            .map(|e| space.alloc(capacities[e.idx()]))
            .collect();
        Layout {
            state,
            buffer,
            footprint: space.used(),
        }
    }
}

/// Execution-wide options.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Model module state as mutated on every firing (dirty evictions).
    pub state_writes: bool,
    /// Charge the input/output tape traffic (identical for all
    /// schedulers; disable to isolate state-and-buffer behavior).
    pub tapes: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            state_writes: true,
            tapes: true,
        }
    }
}

/// Outcome of executing a firing sequence.
#[derive(Clone, Debug)]
pub struct EvalReport {
    pub stats: CacheStats,
    /// Firing count per node.
    pub fired: Vec<u64>,
    /// Items consumed from the input tape (source firings).
    pub inputs: u64,
    /// Items written to the output tape (sink firings).
    pub outputs: u64,
    /// Misses attributed to module state, per node.
    pub state_misses: Vec<u64>,
    /// Misses attributed to channel buffers, per edge.
    pub buffer_misses: Vec<u64>,
    /// Misses on the input/output tapes.
    pub tape_misses: u64,
    /// Total memory footprint of the layout (words).
    pub footprint: u64,
}

impl EvalReport {
    /// Amortized misses per input item — the paper's headline metric.
    pub fn misses_per_input(&self) -> f64 {
        if self.inputs == 0 {
            return self.stats.misses as f64;
        }
        self.stats.misses as f64 / self.inputs as f64
    }

    /// Misses excluding the tape traffic common to all schedulers.
    pub fn interior_misses(&self) -> u64 {
        self.stats.misses - self.tape_misses
    }
}

/// The symbolic executor, generic over the cache model (`C`). The
/// default is the fully-associative LRU simulator — the paper's DAM
/// instrument; [`Executor::with_cache`] accepts any
/// [`ccs_cachesim::BlockCache`] (set-associative, CLOCK, two-level) for
/// robustness experiments.
///
/// ```
/// use ccs_cachesim::CacheParams;
/// use ccs_graph::{gen, NodeId, RateAnalysis};
/// use ccs_sched::{ExecOptions, Executor};
///
/// let g = gen::pipeline_uniform(3, 16);
/// let ra = RateAnalysis::analyze_single_io(&g).unwrap();
/// let mut ex = Executor::new(&g, &ra, vec![4, 4],
///                            CacheParams::new(256, 16),
///                            ExecOptions::default());
/// ex.fire(NodeId(0)).unwrap();             // source fires
/// assert!(ex.fire(NodeId(2)).is_err());    // sink has no input yet
/// ex.fire(NodeId(1)).unwrap();
/// ex.fire(NodeId(2)).unwrap();
/// assert_eq!(ex.report().outputs, 1);
/// ```
pub struct Executor<'g, C: BlockCache = LruCache> {
    g: &'g StreamGraph,
    layout: Layout,
    capacities: Vec<u64>,
    /// Items currently queued per edge.
    occupancy: Vec<u64>,
    /// Cumulative items consumed per edge (ring read position).
    head: Vec<u64>,
    /// Cumulative items produced per edge (ring write position).
    tail: Vec<u64>,
    fired: Vec<u64>,
    inputs: u64,
    outputs: u64,
    source: NodeId,
    sink: NodeId,
    mem: MemorySim<C>,
    opts: ExecOptions,
}

impl<'g> Executor<'g, LruCache> {
    /// Set up an execution over `g` with per-edge `capacities` (items) on
    /// a fully-associative LRU cache described by `params`.
    pub fn new(
        g: &'g StreamGraph,
        ra: &RateAnalysis,
        capacities: Vec<u64>,
        params: CacheParams,
        opts: ExecOptions,
    ) -> Executor<'g, LruCache> {
        let cache = LruCache::new(params.blocks());
        Executor::with_cache(g, ra, capacities, params, opts, cache)
    }
}

impl<'g, C: BlockCache> Executor<'g, C> {
    /// Set up an execution with an explicit cache model.
    pub fn with_cache(
        g: &'g StreamGraph,
        ra: &RateAnalysis,
        capacities: Vec<u64>,
        params: CacheParams,
        opts: ExecOptions,
        cache: C,
    ) -> Executor<'g, C> {
        assert_eq!(capacities.len(), g.edge_count());
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let cap = capacities[e.idx()];
            assert!(
                cap >= edge.produce && cap >= edge.consume,
                "capacity {cap} on {e:?} below rates {}/{}",
                edge.produce,
                edge.consume
            );
        }
        let source = ra.source.expect("executor needs a unique source");
        let sink = ra.sink.expect("executor needs a unique sink");
        let layout = Layout::build(g, &capacities, params.block);
        let mem = MemorySim::with_cache(params, cache);
        Executor {
            g,
            layout,
            occupancy: vec![0; capacities.len()],
            head: vec![0; capacities.len()],
            tail: vec![0; capacities.len()],
            capacities,
            fired: vec![0; g.node_count()],
            inputs: 0,
            outputs: 0,
            source,
            sink,
            mem,
            opts,
        }
    }

    #[inline]
    fn state_tag(&self, v: NodeId) -> u32 {
        v.0
    }

    #[inline]
    fn buffer_tag(&self, e: EdgeId) -> u32 {
        self.g.node_count() as u32 + e.0
    }

    #[inline]
    fn tape_tag(&self) -> u32 {
        (self.g.node_count() + self.g.edge_count()) as u32
    }

    /// Items currently buffered on `e`.
    pub fn occupancy(&self, e: EdgeId) -> u64 {
        self.occupancy[e.idx()]
    }

    /// Declared capacity of `e` (items).
    pub fn capacity(&self, e: EdgeId) -> u64 {
        self.capacities[e.idx()]
    }

    pub fn fired(&self, v: NodeId) -> u64 {
        self.fired[v.idx()]
    }

    pub fn sink_firings(&self) -> u64 {
        self.outputs
    }

    pub fn graph(&self) -> &StreamGraph {
        self.g
    }

    /// Record the block-level access trace of everything executed from
    /// now on (for replay under other replacement policies / Belady MIN).
    pub fn enable_recording(&mut self) {
        self.mem.enable_recording();
    }

    /// The recorded block sequence, if recording was enabled.
    pub fn recorded_blocks(&self) -> Option<&[u64]> {
        self.mem.recorded_blocks()
    }

    /// Would `fire(v)` succeed right now?
    pub fn can_fire(&self, v: NodeId) -> bool {
        self.check_fire(v).is_ok()
    }

    fn check_fire(&self, v: NodeId) -> Result<(), ExecError> {
        for &e in self.g.in_edges(v) {
            let need = self.g.edge(e).consume;
            let have = self.occupancy[e.idx()];
            if have < need {
                return Err(ExecError::Underflow {
                    node: v,
                    edge: e,
                    have,
                    need,
                });
            }
        }
        for &e in self.g.out_edges(v) {
            let produce = self.g.edge(e).produce;
            let have = self.occupancy[e.idx()];
            let capacity = self.capacities[e.idx()];
            if have + produce > capacity {
                return Err(ExecError::Overflow {
                    node: v,
                    edge: e,
                    have,
                    capacity,
                    produce,
                });
            }
        }
        Ok(())
    }

    /// Fire `v` once: validate, account the memory traffic, update
    /// channel occupancies.
    pub fn fire(&mut self, v: NodeId) -> Result<(), ExecError> {
        self.check_fire(v)?;
        // State touch.
        let st = self.layout.state[v.idx()];
        self.mem
            .touch(st.base, st.len, self.opts.state_writes, self.state_tag(v));
        // Inputs.
        for i in 0..self.g.in_edges(v).len() {
            let e = self.g.in_edges(v)[i];
            let consume = self.g.edge(e).consume;
            let region = self.layout.buffer[e.idx()];
            self.mem.touch_ring(
                region,
                self.head[e.idx()],
                consume,
                false,
                self.buffer_tag(e),
            );
            self.head[e.idx()] += consume;
            self.occupancy[e.idx()] -= consume;
        }
        // Outputs.
        for i in 0..self.g.out_edges(v).len() {
            let e = self.g.out_edges(v)[i];
            let produce = self.g.edge(e).produce;
            let region = self.layout.buffer[e.idx()];
            self.mem.touch_ring(
                region,
                self.tail[e.idx()],
                produce,
                true,
                self.buffer_tag(e),
            );
            self.tail[e.idx()] += produce;
            self.occupancy[e.idx()] += produce;
        }
        // Tapes.
        if v == self.source {
            if self.opts.tapes {
                self.mem
                    .touch(INPUT_TAPE_BASE + self.inputs, 1, false, self.tape_tag());
            }
            self.inputs += 1;
        }
        if v == self.sink {
            if self.opts.tapes {
                self.mem
                    .touch(OUTPUT_TAPE_BASE + self.outputs, 1, true, self.tape_tag());
            }
            self.outputs += 1;
        }
        self.fired[v.idx()] += 1;
        Ok(())
    }

    /// Execute a whole firing sequence.
    pub fn run(&mut self, firings: &[NodeId]) -> Result<(), ExecError> {
        for &v in firings {
            self.fire(v)?;
        }
        Ok(())
    }

    /// Finish and summarize.
    pub fn report(&self) -> EvalReport {
        let n = self.g.node_count();
        let m = self.g.edge_count();
        let state_misses = (0..n).map(|i| self.mem.misses_for(i as u32)).collect();
        let buffer_misses = (0..m)
            .map(|i| self.mem.misses_for((n + i) as u32))
            .collect();
        EvalReport {
            stats: *self.mem.stats(),
            fired: self.fired.clone(),
            inputs: self.inputs,
            outputs: self.outputs,
            state_misses,
            buffer_misses,
            tape_misses: self.mem.misses_for(self.tape_tag()),
            footprint: self.layout.footprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_graph::GraphBuilder;

    fn chain3() -> (StreamGraph, RateAnalysis) {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 16);
        let a = b.node("a", 16);
        let t = b.node("t", 16);
        b.edge(s, a, 1, 1);
        b.edge(a, t, 1, 1);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        (g, ra)
    }

    fn params() -> CacheParams {
        CacheParams::new(256, 8)
    }

    #[test]
    fn legal_firing_updates_occupancy() {
        let (g, ra) = chain3();
        let mut ex = Executor::new(&g, &ra, vec![4, 4], params(), ExecOptions::default());
        ex.fire(NodeId(0)).unwrap();
        assert_eq!(ex.occupancy(EdgeId(0)), 1);
        ex.fire(NodeId(1)).unwrap();
        assert_eq!(ex.occupancy(EdgeId(0)), 0);
        assert_eq!(ex.occupancy(EdgeId(1)), 1);
        ex.fire(NodeId(2)).unwrap();
        assert_eq!(ex.sink_firings(), 1);
        assert_eq!(ex.fired(NodeId(0)), 1);
    }

    #[test]
    fn underflow_rejected() {
        let (g, ra) = chain3();
        let mut ex = Executor::new(&g, &ra, vec![4, 4], params(), ExecOptions::default());
        let err = ex.fire(NodeId(1)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Underflow {
                need: 1,
                have: 0,
                ..
            }
        ));
    }

    #[test]
    fn overflow_rejected() {
        let (g, ra) = chain3();
        let mut ex = Executor::new(&g, &ra, vec![2, 2], params(), ExecOptions::default());
        ex.fire(NodeId(0)).unwrap();
        ex.fire(NodeId(0)).unwrap();
        let err = ex.fire(NodeId(0)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Overflow {
                capacity: 2,
                have: 2,
                ..
            }
        ));
    }

    #[test]
    fn state_misses_amortize_with_consecutive_firings() {
        let (g, ra) = chain3();
        // Big cache: everything fits. Fire source 8 times consecutively:
        // state loads once (2 blocks of 8 words), buffer writes once per
        // block of 8 items.
        let mut ex = Executor::new(&g, &ra, vec![16, 16], params(), ExecOptions::default());
        for _ in 0..8 {
            ex.fire(NodeId(0)).unwrap();
        }
        let rep = ex.report();
        assert_eq!(
            rep.state_misses[0], 2,
            "16-word state = 2 blocks, loaded once"
        );
        assert_eq!(rep.buffer_misses[0], 1, "8 items fill one block");
        assert_eq!(rep.inputs, 8);
        assert_eq!(rep.tape_misses, 1, "8 input words = 1 block");
    }

    #[test]
    fn thrash_when_cache_smaller_than_working_set() {
        // Cache of 2 blocks (16 words); two modules of 16-word state
        // alternate: every firing reloads both state blocks.
        let mut b = GraphBuilder::new();
        let s = b.node("s", 16);
        let t = b.node("t", 16);
        b.edge(s, t, 1, 1);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let small = CacheParams::new(16, 8);
        let mut ex = Executor::new(
            &g,
            &ra,
            vec![4],
            small,
            ExecOptions {
                state_writes: false,
                tapes: false,
            },
        );
        for _ in 0..10 {
            ex.fire(NodeId(0)).unwrap();
            ex.fire(NodeId(1)).unwrap();
        }
        let rep = ex.report();
        // Interleaved state (2 blocks each) + buffer traffic in 2-block
        // cache: state alone wants 4 blocks -> continual eviction.
        assert!(
            rep.state_misses[0] + rep.state_misses[1] >= 2 * 10,
            "alternating working set must thrash: {:?}",
            rep.state_misses
        );
    }

    #[test]
    fn ring_buffer_reuses_blocks() {
        let (g, ra) = chain3();
        let mut ex = Executor::new(&g, &ra, vec![8, 8], params(), ExecOptions::default());
        // Produce/consume in lockstep 64 times: ring of 8 items = 1 block,
        // stays cached throughout.
        for _ in 0..64 {
            ex.fire(NodeId(0)).unwrap();
            ex.fire(NodeId(1)).unwrap();
            ex.fire(NodeId(2)).unwrap();
        }
        let rep = ex.report();
        assert_eq!(rep.buffer_misses[0], 1);
        assert_eq!(rep.buffer_misses[1], 1);
        assert_eq!(rep.outputs, 64);
    }

    #[test]
    fn run_reports_first_error_position() {
        let (g, ra) = chain3();
        let mut ex = Executor::new(&g, &ra, vec![4, 4], params(), ExecOptions::default());
        let seq = vec![NodeId(0), NodeId(1), NodeId(1)];
        let err = ex.run(&seq).unwrap_err();
        assert!(matches!(err, ExecError::Underflow { .. }));
        // The first two firings took effect.
        assert_eq!(ex.fired(NodeId(0)), 1);
        assert_eq!(ex.fired(NodeId(1)), 1);
    }

    #[test]
    fn capacity_below_rate_is_rejected() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 4);
        let t = b.node("t", 4);
        b.edge(s, t, 3, 3);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let result = std::panic::catch_unwind(|| {
            Executor::new(&g, &ra, vec![2], params(), ExecOptions::default())
        });
        assert!(result.is_err());
    }

    #[test]
    fn generic_cache_models_plug_in() {
        // The same schedule through LRU and a two-level hierarchy: the
        // hierarchy's memory misses never exceed single-level LRU's.
        let (g, ra) = chain3();
        let firings: Vec<NodeId> = (0..32)
            .flat_map(|_| [NodeId(0), NodeId(1), NodeId(2)])
            .collect();
        let mut lru = Executor::new(&g, &ra, vec![4, 4], params(), ExecOptions::default());
        lru.run(&firings).unwrap();
        let two_level = ccs_cachesim::TwoLevelCache::new(2, params().blocks());
        let mut two = Executor::with_cache(
            &g,
            &ra,
            vec![4, 4],
            params(),
            ExecOptions::default(),
            two_level,
        );
        two.run(&firings).unwrap();
        assert!(two.report().stats.misses <= lru.report().stats.misses);
        let clock = ccs_cachesim::ClockCache::new(params().blocks());
        let mut ck =
            Executor::with_cache(&g, &ra, vec![4, 4], params(), ExecOptions::default(), clock);
        ck.run(&firings).unwrap();
        assert!(ck.report().stats.misses > 0);
    }

    #[test]
    fn misses_per_input_metric() {
        let (g, ra) = chain3();
        let mut ex = Executor::new(&g, &ra, vec![4, 4], params(), ExecOptions::default());
        for _ in 0..16 {
            ex.fire(NodeId(0)).unwrap();
            ex.fire(NodeId(1)).unwrap();
            ex.fire(NodeId(2)).unwrap();
        }
        let rep = ex.report();
        assert_eq!(rep.inputs, 16);
        assert!(rep.misses_per_input() > 0.0);
        assert!(rep.interior_misses() <= rep.stats.misses);
    }
}
