//! The paper's two-level partitioned schedulers (§3).
//!
//! Given a well-ordered c-bounded partition, scheduling happens at two
//! levels: the *higher* level loads components one at a time (in
//! contracted topological order, or dynamically); the *lower* level fires
//! the modules inside the loaded component many times, against small
//! internal buffers, so that the component's state amortizes over
//! `Ω(M)` items of cross-edge traffic.
//!
//! Three variants, exactly following the paper:
//!
//! * [`homogeneous`] — all rates 1: set `T = M`; per high-level round each
//!   component is loaded once and its modules fire `M` times each (the
//!   low level fires the component's modules once each in topological
//!   order, repeated `M` times).
//! * [`inhomogeneous`] — general rates: compute a granularity `T` such
//!   that `T·gain(u,v)` is integral, divisible by the edge rates, and at
//!   least `M` ([`granularity_t`]); cross edges get buffers of exactly
//!   `T·gain(u,v)`; per round each component is loaded once and fully
//!   drains the round's progeny.
//! * [`pipeline_dynamic`] — pipelines: cross edges get Θ(M) buffers and
//!   components are chosen dynamically by the paper's continuity rule
//!   (scan cross edges in order; the component before the first at most
//!   half-full buffer runs until its input empties or its output fills).

use crate::plan::SchedRun;
use ccs_graph::ratio::{checked_lcm_u64, gcd_u64};
use ccs_graph::{buffers, EdgeId, NodeId, RateAnalysis, StreamGraph};
use ccs_partition::Partition;
use std::fmt;

/// Errors from the partitioned schedulers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartSchedError {
    /// `homogeneous` called on a graph with nonunit rates.
    NotHomogeneous,
    /// `pipeline_dynamic` called on a non-pipeline.
    NotAPipeline,
    /// The partition failed validation (well-orderedness is required for
    /// component-at-a-time execution).
    InvalidPartition,
    /// The low-level scheduler wedged (indicates an internal-buffer
    /// sizing bug; should be unreachable for rate-matched graphs).
    Deadlock { component: u32 },
    /// Granularity or capacity arithmetic overflowed.
    Overflow,
}

impl fmt::Display for PartSchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartSchedError::NotHomogeneous => {
                write!(f, "graph has nonunit rates; use `inhomogeneous`")
            }
            PartSchedError::NotAPipeline => write!(f, "graph is not a pipeline"),
            PartSchedError::InvalidPartition => {
                write!(f, "partition is not well-ordered")
            }
            PartSchedError::Deadlock { component } => {
                write!(f, "low-level deadlock in component {component}")
            }
            PartSchedError::Overflow => write!(f, "capacity arithmetic overflow"),
        }
    }
}

impl std::error::Error for PartSchedError {}

/// The paper's granularity `T` for inhomogeneous graphs (§3): the
/// smallest multiple of `T₀` such that `T·gain(u,v) ≥ m` for **every**
/// edge, where `T₀` is the least `T` making `T·gain(v)` integral for
/// every `v` (which also makes `T·gain(u,v)` integral and divisible by
/// both edge rates). Cross-edge buffers sized at `T·gain(u,v)` then hold
/// at least `M` items each, so component loads amortize.
pub fn granularity_t(g: &StreamGraph, ra: &RateAnalysis, m: u64) -> Result<u64, PartSchedError> {
    let s = ra.source.expect("granularity needs a unique source");
    let qs = ra.q(s);
    let mut t0: u64 = 1;
    for &qv in &ra.repetitions {
        let need = qs / gcd_u64(qs, qv);
        t0 = checked_lcm_u64(t0, need).ok_or(PartSchedError::Overflow)?;
    }
    // Minimum T so every edge's buffer T·gain(e) reaches m: driven by the
    // minimum edge gain.
    let m = m.max(1);
    let gain_min = g
        .edge_ids()
        .map(|e| ra.edge_gain(g, e))
        .min()
        .unwrap_or(ccs_graph::Ratio::ONE);
    // t_floor = ceil(m / gain_min), computed exactly.
    let t_floor = (ccs_graph::Ratio::integer(m as i128)
        .checked_div(gain_min)
        .ok_or(PartSchedError::Overflow)?)
    .ceil()
    .max(1) as u64;
    let t = t0
        .checked_mul(t_floor.div_ceil(t0))
        .ok_or(PartSchedError::Overflow)?;
    Ok(t)
}

/// Per-node firings in one round of granularity `t`: `t·gain(v)`,
/// guaranteed integral when `t` comes from [`granularity_t`].
fn round_quota(ra: &RateAnalysis, t: u64) -> Result<Vec<u64>, PartSchedError> {
    let s = ra.source.expect("unique source");
    let qs = ra.q(s) as u128;
    ra.repetitions
        .iter()
        .map(|&qv| {
            let num = t as u128 * qv as u128;
            if !num.is_multiple_of(qs) {
                return Err(PartSchedError::Overflow);
            }
            u64::try_from(num / qs).map_err(|_| PartSchedError::Overflow)
        })
        .collect()
}

/// One component's share of a granularity-`T` round, executed
/// symbolically: repeatedly fire the topologically deepest module that
/// still owes firings this round, has its inputs available in
/// `occupancy`, and (when `capacities` is given) has room on its
/// outputs (`u64::MAX` entries mean unbounded). Updates `occupancy` and
/// `highwater` in place; returns the firing sequence, or `None` if the
/// component wedges.
///
/// Shared by the serial [`inhomogeneous`] scheduler and `ccs-exec`'s
/// batch planner, so the serial reference and the parallel executor run
/// bit-identical local schedules.
pub fn component_round_schedule(
    g: &StreamGraph,
    rank: &[usize],
    quota: &[u64],
    comp: &[NodeId],
    capacities: Option<&[u64]>,
    occupancy: &mut [u64],
    highwater: &mut [u64],
) -> Option<Vec<NodeId>> {
    let mut remaining: Vec<u64> = comp.iter().map(|v| quota[v.idx()]).collect();
    let mut left: u64 = remaining.iter().sum();
    let mut seq = Vec::with_capacity(usize::try_from(left).unwrap_or(0));
    while left > 0 {
        let pick = comp
            .iter()
            .enumerate()
            .filter(|&(i, &v)| {
                remaining[i] > 0
                    && g.in_edges(v)
                        .iter()
                        .all(|&e| occupancy[e.idx()] >= g.edge(e).consume)
                    && capacities.is_none_or(|caps| {
                        g.out_edges(v).iter().all(|&e| {
                            caps[e.idx()] == u64::MAX
                                || occupancy[e.idx()] + g.edge(e).produce <= caps[e.idx()]
                        })
                    })
            })
            .max_by_key(|&(_, &v)| rank[v.idx()]);
        let (i, &v) = pick?;
        for &e in g.in_edges(v) {
            occupancy[e.idx()] -= g.edge(e).consume;
        }
        for &e in g.out_edges(v) {
            occupancy[e.idx()] += g.edge(e).produce;
            highwater[e.idx()] = highwater[e.idx()].max(occupancy[e.idx()]);
        }
        remaining[i] -= 1;
        left -= 1;
        seq.push(v);
    }
    Some(seq)
}

/// Nodes of each component in global topological order, components in
/// contracted topological order.
fn ordered_components(g: &StreamGraph, p: &Partition) -> Result<Vec<Vec<NodeId>>, PartSchedError> {
    let comp_order = p
        .topo_order_components(g)
        .ok_or(PartSchedError::InvalidPartition)?;
    let rank = ccs_graph::topo::topo_rank(g);
    let mut comps = p.components();
    for c in &mut comps {
        c.sort_by_key(|v| rank[v.idx()]);
    }
    Ok(comp_order
        .into_iter()
        .map(|c| std::mem::take(&mut comps[c as usize]))
        .collect())
}

/// The homogeneous partitioned scheduler (`T = M`).
///
/// `m_items` is the number of items `M` (the cache size in words, since
/// items are unit-size); `rounds` high-level rounds are scheduled, firing
/// the sink `rounds·m_items` times.
pub fn homogeneous(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m_items: u64,
    rounds: u64,
) -> Result<SchedRun, PartSchedError> {
    if !g.is_homogeneous() {
        return Err(PartSchedError::NotHomogeneous);
    }
    debug_assert!(
        ra.repetitions.iter().all(|&q| q == 1),
        "homogeneous graphs have the all-ones repetition vector"
    );
    let comps = ordered_components(g, p)?;
    let m = m_items.max(1);

    // Capacities: cross edges hold a full round (M items); internal edges
    // use the minimal safe buffer (2 for homogeneous edges).
    let capacities: Vec<u64> = g
        .edge_ids()
        .map(|e| {
            let edge = g.edge(e);
            if p.component_of(edge.src) == p.component_of(edge.dst) {
                buffers::min_buf_safe(g, e)
            } else {
                m
            }
        })
        .collect();

    let per_round: usize = comps.iter().map(|c| c.len()).sum::<usize>()
        * usize::try_from(m).map_err(|_| PartSchedError::Overflow)?;
    let mut firings = Vec::with_capacity(per_round * usize::try_from(rounds).unwrap_or(0));
    for _ in 0..rounds {
        for comp in &comps {
            // Low level: each module once in topological order, repeated
            // M times (paper, "Scheduling homogeneous graphs").
            for _ in 0..m {
                firings.extend_from_slice(comp);
            }
        }
    }
    Ok(SchedRun {
        label: "partitioned-homogeneous".into(),
        firings,
        capacities,
    })
}

/// The general (inhomogeneous) partitioned scheduler.
///
/// Computes the granularity `T` ([`granularity_t`] with `m = m_items`),
/// sizes each cross edge at exactly `T·gain(e)` items, and schedules
/// `rounds` high-level rounds: components in contracted topological
/// order, each loaded once per round; the low level fires the
/// topologically deepest module that still owes firings this round and
/// can fire. Internal buffer capacities are the exact occupancy highwater
/// of that low-level policy (computed by one dry-run simulation — the
/// executable analogue of the `minBuf` procedure the paper cites).
pub fn inhomogeneous(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m_items: u64,
    rounds: u64,
) -> Result<SchedRun, PartSchedError> {
    let comps = ordered_components(g, p)?;
    let t = granularity_t(g, ra, m_items)?;
    let quota = round_quota(ra, t)?;

    // Cross-edge capacities: exactly one round of traffic.
    let mut capacities: Vec<u64> = Vec::with_capacity(g.edge_count());
    for e in g.edge_ids() {
        let edge = g.edge(e);
        if p.component_of(edge.src) == p.component_of(edge.dst) {
            capacities.push(u64::MAX); // placeholder; set from the dry run
        } else {
            // quota(src) * produce = T·gain(e)
            let cap = quota[edge.src.idx()]
                .checked_mul(edge.produce)
                .ok_or(PartSchedError::Overflow)?;
            capacities.push(cap);
        }
    }

    // Dry-run one round with unbounded internal buffers, recording the
    // firing sequence and internal occupancy highwater marks.
    let mut occupancy = vec![0u64; g.edge_count()];
    let mut highwater = vec![0u64; g.edge_count()];
    let mut round_seq: Vec<NodeId> = Vec::new();
    let rank = ccs_graph::topo::topo_rank(g);
    for (ci, comp) in comps.iter().enumerate() {
        let seq = component_round_schedule(
            g,
            &rank,
            &quota,
            comp,
            Some(&capacities),
            &mut occupancy,
            &mut highwater,
        )
        .ok_or(PartSchedError::Deadlock {
            component: ci as u32,
        })?;
        round_seq.extend(seq);
    }
    debug_assert!(
        occupancy.iter().all(|&o| o == 0),
        "a full round must return every channel to empty"
    );

    // Internal capacities = recorded highwater (at least the safe bound's
    // floor of max(produce, consume)).
    for e in g.edge_ids() {
        if capacities[e.idx()] == u64::MAX {
            let edge = g.edge(e);
            capacities[e.idx()] = highwater[e.idx()].max(edge.produce).max(edge.consume);
        }
    }

    let mut firings = Vec::with_capacity(round_seq.len() * usize::try_from(rounds).unwrap_or(0));
    for _ in 0..rounds {
        firings.extend_from_slice(&round_seq);
    }
    Ok(SchedRun {
        label: "partitioned".into(),
        firings,
        capacities,
    })
}

/// The paper's dynamic pipeline scheduler.
///
/// Cross edges get buffers of `2·max(m_items, p+c)` items. Until the sink
/// has fired `sink_target` times: scan cross edges in chain order; the
/// component *before* the first at-most-half-full buffer is schedulable
/// (its input is more than half full by construction; the sink's output
/// is treated as always empty); run it until its input empties or its
/// output fills.
pub fn pipeline_dynamic(
    g: &StreamGraph,
    ra: &RateAnalysis,
    p: &Partition,
    m_items: u64,
    sink_target: u64,
) -> Result<SchedRun, PartSchedError> {
    let order = g.pipeline_order().ok_or(PartSchedError::NotAPipeline)?;
    let comps = ordered_components(g, p)?;
    let sink = ra.sink.ok_or(PartSchedError::NotAPipeline)?;
    debug_assert_eq!(Some(&sink), order.last());

    // Chain cross edges in order, one per component boundary.
    let mut cross: Vec<EdgeId> = Vec::new();
    for &u in &order[..order.len().saturating_sub(1)] {
        let e = g.out_edges(u)[0];
        let edge = g.edge(e);
        if p.component_of(edge.src) != p.component_of(edge.dst) {
            cross.push(e);
        }
    }

    let capacities: Vec<u64> = g
        .edge_ids()
        .map(|e| {
            let edge = g.edge(e);
            if p.component_of(edge.src) == p.component_of(edge.dst) {
                buffers::min_buf_safe(g, e)
            } else {
                2 * m_items.max(edge.produce + edge.consume)
            }
        })
        .collect();

    let mut occupancy = vec![0u64; g.edge_count()];
    let mut firings: Vec<NodeId> = Vec::new();
    let mut sink_fired = 0u64;
    let rank = ccs_graph::topo::topo_rank(g);

    let can_fire = |occupancy: &[u64], v: NodeId| -> bool {
        g.in_edges(v)
            .iter()
            .all(|&e| occupancy[e.idx()] >= g.edge(e).consume)
            && g.out_edges(v)
                .iter()
                .all(|&e| occupancy[e.idx()] + g.edge(e).produce <= capacities[e.idx()])
    };

    while sink_fired < sink_target {
        // Continuity scan: first cross edge at most half full; its
        // upstream component runs. All-more-than-half-full => run the
        // last component (the sink's output is "always empty").
        let comp_idx = cross
            .iter()
            .position(|&e| 2 * occupancy[e.idx()] <= capacities[e.idx()])
            .unwrap_or(comps.len() - 1);
        let comp = &comps[comp_idx];
        let mut progressed = false;
        // Run until blocked: deepest fireable module in the component.
        loop {
            let pick = comp
                .iter()
                .copied()
                .filter(|&v| can_fire(&occupancy, v))
                .max_by_key(|&v| rank[v.idx()]);
            let v = match pick {
                Some(v) => v,
                None => break,
            };
            for &e in g.in_edges(v) {
                occupancy[e.idx()] -= g.edge(e).consume;
            }
            for &e in g.out_edges(v) {
                occupancy[e.idx()] += g.edge(e).produce;
            }
            firings.push(v);
            progressed = true;
            if v == sink {
                sink_fired += 1;
                if sink_fired >= sink_target {
                    break;
                }
            }
        }
        if !progressed {
            return Err(PartSchedError::Deadlock {
                component: comp_idx as u32,
            });
        }
    }

    Ok(SchedRun {
        label: "partitioned-pipeline-dynamic".into(),
        firings,
        capacities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOptions, Executor};
    use ccs_cachesim::CacheParams;
    use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
    use ccs_partition::{dag_greedy, pipeline as ppart};

    fn exec_check(g: &StreamGraph, ra: &RateAnalysis, run: &SchedRun) -> crate::exec::EvalReport {
        let params = CacheParams::new(1 << 14, 16);
        let mut ex = Executor::new(
            g,
            ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex.run(&run.firings)
            .unwrap_or_else(|e| panic!("{}: illegal schedule: {e}", run.label));
        ex.report()
    }

    #[test]
    fn granularity_is_integral_and_large_enough() {
        let g = gen::pipeline(&PipelineCfg::default(), 5);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let t = granularity_t(&g, &ra, 100).unwrap();
        // The §3 condition: T·gain(u,v) ≥ m on every edge.
        for e in g.edge_ids() {
            let buf = ccs_graph::Ratio::integer(t as i128) * ra.edge_gain(&g, e);
            assert!(
                buf >= ccs_graph::Ratio::integer(100),
                "edge {e:?}: buffer {buf}"
            );
        }
        let quota = round_quota(&ra, t).unwrap();
        assert!(quota.iter().all(|&n| n > 0));
    }

    #[test]
    fn homogeneous_schedule_is_legal_and_balanced() {
        let cfg = LayeredCfg {
            max_q: 1,
            state: StateDist::Uniform(16, 64),
            ..LayeredCfg::default()
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let p = dag_greedy::greedy_topo(&g, 128);
            let run = homogeneous(&g, &ra, &p, 32, 3).unwrap();
            let rep = exec_check(&g, &ra, &run);
            assert_eq!(rep.outputs, 3 * 32, "seed {seed}");
            // Every module fires M times per round.
            for v in g.node_ids() {
                assert_eq!(rep.fired[v.idx()], 3 * 32);
            }
        }
    }

    #[test]
    fn homogeneous_rejects_rated_graph() {
        let g = gen::pipeline(
            &PipelineCfg {
                max_q: 3,
                ..PipelineCfg::default()
            },
            1,
        );
        // Find a seed with actual nonunit rates.
        if g.is_homogeneous() {
            return; // unlucky seed; other tests cover the main path
        }
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::whole(&g);
        assert_eq!(
            homogeneous(&g, &ra, &p, 8, 1).unwrap_err(),
            PartSchedError::NotHomogeneous
        );
    }

    #[test]
    fn inhomogeneous_schedule_is_legal_on_pipelines() {
        for seed in 0..10u64 {
            let cfg = PipelineCfg {
                len: 12,
                state: StateDist::Uniform(8, 64),
                max_q: 4,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let pp = ppart::greedy_theorem5(&g, &ra, 64).unwrap();
            let run = inhomogeneous(&g, &ra, &pp.partition, 64, 2).unwrap();
            exec_check(&g, &ra, &run);
        }
    }

    #[test]
    fn inhomogeneous_schedule_is_legal_on_dags() {
        let cfg = LayeredCfg {
            layers: 4,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q: 3,
        };
        for seed in 0..10u64 {
            let g = gen::layered(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let p = dag_greedy::greedy_topo(&g, 96);
            let run = inhomogeneous(&g, &ra, &p, 48, 2).unwrap();
            let rep = exec_check(&g, &ra, &run);
            // Per round, node v fires T·gain(v) times.
            let t = granularity_t(&g, &ra, 48).unwrap();
            let quota = round_quota(&ra, t).unwrap();
            for v in g.node_ids() {
                assert_eq!(rep.fired[v.idx()], 2 * quota[v.idx()], "seed {seed}");
            }
        }
    }

    #[test]
    fn pipeline_dynamic_reaches_target() {
        for seed in 0..10u64 {
            let cfg = PipelineCfg {
                len: 10,
                state: StateDist::Uniform(8, 64),
                max_q: 3,
                max_rate_scale: 2,
            };
            let g = gen::pipeline(&cfg, seed);
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            let pp = ppart::greedy_theorem5(&g, &ra, 64).unwrap();
            let run = pipeline_dynamic(&g, &ra, &pp.partition, 64, 100).unwrap();
            let rep = exec_check(&g, &ra, &run);
            assert_eq!(rep.outputs, 100, "seed {seed}");
        }
    }

    #[test]
    fn pipeline_dynamic_single_component() {
        let g = gen::pipeline_uniform(4, 16);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let p = Partition::whole(&g);
        let run = pipeline_dynamic(&g, &ra, &p, 32, 50).unwrap();
        let rep = exec_check(&g, &ra, &run);
        assert_eq!(rep.outputs, 50);
    }

    #[test]
    fn partitioned_beats_naive_when_state_thrashes() {
        // A long homogeneous pipeline whose total state far exceeds the
        // cache: the single-appearance schedule reloads everything every
        // iteration, the partitioned schedule amortizes loads over M
        // firings — the paper's headline effect. Theorem 5 components can
        // reach 8x the partition parameter, so partition with cache/8
        // (the paper's constant-factor cache augmentation, applied in
        // reverse).
        let g = gen::pipeline_uniform(32, 256); // 8192 words of state
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let cache_words = 2048u64;
        let params = CacheParams::new(cache_words, 16);

        let iters = 2048u64; // = 1 partitioned round of M sink firings
        let naive = crate::baseline::single_appearance(&g, &ra, iters);
        let mut ex1 = Executor::new(
            &g,
            &ra,
            naive.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex1.run(&naive.firings).unwrap();
        let rep_naive = ex1.report();

        let pp = ppart::greedy_theorem5(&g, &ra, cache_words / 8).unwrap();
        assert!(pp.max_component_state <= cache_words);
        let run = homogeneous(&g, &ra, &pp.partition, cache_words, iters / cache_words).unwrap();
        let mut ex2 = Executor::new(
            &g,
            &ra,
            run.capacities.clone(),
            params,
            ExecOptions::default(),
        );
        ex2.run(&run.firings).unwrap();
        let rep_part = ex2.report();

        assert_eq!(rep_naive.outputs, rep_part.outputs);
        assert!(
            rep_part.stats.misses * 4 < rep_naive.stats.misses,
            "partitioned {} should be >=4x better than naive {}",
            rep_part.stats.misses,
            rep_naive.stats.misses
        );
    }
}
