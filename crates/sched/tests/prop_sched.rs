//! Property-based tests for schedulers and the symbolic executor.

use ccs_cachesim::CacheParams;
use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
use ccs_graph::RateAnalysis;
use ccs_partition::{dag_greedy, pipeline as ppart};
use ccs_sched::{baseline, partitioned, ExecOptions, Executor, SchedRun};
use proptest::prelude::*;

fn exec(
    g: &ccs_graph::StreamGraph,
    ra: &RateAnalysis,
    run: &SchedRun,
    params: CacheParams,
) -> ccs_sched::EvalReport {
    let mut ex = Executor::new(
        g,
        ra,
        run.capacities.clone(),
        params,
        ExecOptions::default(),
    );
    ex.run(&run.firings)
        .unwrap_or_else(|e| panic!("{}: {e}", run.label));
    ex.report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every scheduler produces a legal schedule on random pipelines, and
    /// firing counts respect the repetition vector's proportions.
    #[test]
    fn schedulers_legal_on_pipelines(seed in 0u64..5_000, len in 3usize..20,
                                     max_q in 1u64..4) {
        let cfg = PipelineCfg {
            len,
            state: StateDist::Uniform(8, 64),
            max_q,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let params = CacheParams::new(1 << 13, 16);

        let sas = baseline::single_appearance(&g, &ra, 3);
        let rep = exec(&g, &ra, &sas, params);
        for v in g.node_ids() {
            prop_assert_eq!(rep.fired[v.idx()], 3 * ra.q(v));
        }

        let dem = baseline::demand_driven(&g, &ra, 7);
        let rep = exec(&g, &ra, &dem, params);
        prop_assert_eq!(rep.outputs, 7);
    }

    /// The static partitioned schedulers are legal and hit their exact
    /// round quotas on random dags, for any greedy partition bound.
    #[test]
    fn partitioned_static_quota_exact(seed in 0u64..5_000, max_q in 1u64..4,
                                      bound_mult in 2u64..6) {
        let cfg = LayeredCfg {
            layers: 3,
            max_width: 3,
            density: 0.3,
            state: StateDist::Uniform(8, 48),
            max_q,
        };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let bound = g.max_state() * bound_mult;
        let p = dag_greedy::greedy_topo(&g, bound);
        let m_items = 32u64;
        let run = partitioned::inhomogeneous(&g, &ra, &p, m_items, 2).unwrap();
        let rep = exec(&g, &ra, &run, CacheParams::new(1 << 13, 16));
        let t = partitioned::granularity_t(&g, &ra, m_items).unwrap();
        let s = ra.source.unwrap();
        for v in g.node_ids() {
            let quota = (t as u128 * ra.q(v) as u128 / ra.q(s) as u128) as u64;
            prop_assert_eq!(rep.fired[v.idx()], 2 * quota);
        }
    }

    /// The dynamic pipeline scheduler reaches any target and never
    /// violates buffer bounds.
    #[test]
    fn pipeline_dynamic_reaches_any_target(seed in 0u64..5_000,
                                           target in 1u64..300) {
        let cfg = PipelineCfg {
            len: 8,
            state: StateDist::Uniform(8, 32),
            max_q: 3,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let pp = ppart::greedy_theorem5(&g, &ra, 32).unwrap();
        let run = partitioned::pipeline_dynamic(&g, &ra, &pp.partition, 64, target)
            .unwrap();
        let rep = exec(&g, &ra, &run, CacheParams::new(1 << 13, 16));
        prop_assert!(rep.outputs >= target);
    }

    /// Conservation: in any legal execution, items produced minus items
    /// consumed on each edge equals the final occupancy, and all
    /// occupancies are within capacity.
    #[test]
    fn executor_conserves_items(seed in 0u64..5_000) {
        let cfg = LayeredCfg {
            max_q: 3,
            ..LayeredCfg::default()
        };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 2);
        let params = CacheParams::new(1 << 13, 16);
        let mut ex = Executor::new(&g, &ra, run.capacities.clone(), params, ExecOptions::default());
        for &v in &run.firings {
            ex.fire(v).unwrap();
            for e in g.edge_ids() {
                prop_assert!(ex.occupancy(e) <= ex.capacity(e));
            }
        }
        // Steady state: everything drains back to zero.
        for e in g.edge_ids() {
            prop_assert_eq!(ex.occupancy(e), 0);
        }
    }

    /// Cache monotonicity through the executor: a bigger cache never
    /// yields more misses for the same schedule (LRU inclusion).
    #[test]
    fn bigger_cache_never_hurts(seed in 0u64..5_000) {
        let cfg = PipelineCfg {
            len: 10,
            state: StateDist::Uniform(16, 64),
            max_q: 2,
            max_rate_scale: 2,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let run = baseline::single_appearance(&g, &ra, 4);
        let mut last = u64::MAX;
        for m in [256u64, 512, 1024, 2048] {
            let rep = exec(&g, &ra, &run, CacheParams::new(m, 16));
            prop_assert!(rep.stats.misses <= last);
            last = rep.stats.misses;
        }
    }

    /// Scaled SAS with scale s over k iterations equals plain SAS over
    /// s*k iterations in total firings (same work, different order).
    #[test]
    fn scaling_preserves_work(seed in 0u64..5_000, scale in 1u64..5,
                              iters in 1u64..4) {
        let g = gen::pipeline(&PipelineCfg::default(), seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let a = baseline::scaled_sas(&g, &ra, scale, iters);
        let b = baseline::single_appearance(&g, &ra, scale * iters);
        prop_assert_eq!(a.firings.len(), b.firings.len());
    }
}
