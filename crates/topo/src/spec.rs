//! Synthetic topology specifications.

use std::fmt;
use std::str::FromStr;

/// Shape of a synthetic machine: `nodes × clusters_per_node ×
/// cores_per_cluster`, written `NxCxK` (e.g. `2x2x4` = 2 NUMA nodes,
/// each with 2 LLC clusters of 4 cores). Deterministic: cpu ids are
/// numbered sequentially from 0 in cache-compact order, so the same
/// spec yields bit-identical placements on every host — the fallback
/// that makes topology-aware tests portable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TopoSpec {
    /// NUMA nodes in the machine.
    pub nodes: usize,
    /// LLC clusters per NUMA node.
    pub clusters_per_node: usize,
    /// Cores per LLC cluster.
    pub cores_per_cluster: usize,
}

impl TopoSpec {
    /// Build a spec; every level must be at least 1 (panics otherwise).
    pub fn new(nodes: usize, clusters_per_node: usize, cores_per_cluster: usize) -> TopoSpec {
        assert!(
            nodes >= 1 && clusters_per_node >= 1 && cores_per_cluster >= 1,
            "every level of a topology spec must be at least 1"
        );
        TopoSpec {
            nodes,
            clusters_per_node,
            cores_per_cluster,
        }
    }

    /// Parse a CLI-style spec: `NxCxK` (three levels), `CxK` (one NUMA
    /// node), or a bare core count `K` (one node, one cluster — the
    /// flat machine). Every level must be a positive integer.
    pub fn parse(s: &str) -> Option<TopoSpec> {
        let parts: Vec<&str> = s.split('x').collect();
        let nums: Vec<usize> = parts
            .iter()
            .map(|p| p.trim().parse::<usize>().ok().filter(|&n| n >= 1))
            .collect::<Option<_>>()?;
        match nums[..] {
            [cores] => Some(TopoSpec::new(1, 1, cores)),
            [clusters, cores] => Some(TopoSpec::new(1, clusters, cores)),
            [nodes, clusters, cores] => Some(TopoSpec::new(nodes, clusters, cores)),
            _ => None,
        }
    }

    /// LLC clusters in the whole machine.
    pub fn total_clusters(&self) -> usize {
        self.nodes * self.clusters_per_node
    }

    /// Cores in the whole machine.
    pub fn total_cores(&self) -> usize {
        self.total_clusters() * self.cores_per_cluster
    }
}

impl fmt::Display for TopoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}",
            self.nodes, self.clusters_per_node, self.cores_per_cluster
        )
    }
}

impl FromStr for TopoSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<TopoSpec, String> {
        TopoSpec::parse(s)
            .ok_or_else(|| format!("bad topology spec '{s}' (want NxCxK, CxK, or a core count)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_three_forms() {
        assert_eq!(TopoSpec::parse("8"), Some(TopoSpec::new(1, 1, 8)));
        assert_eq!(TopoSpec::parse("2x4"), Some(TopoSpec::new(1, 2, 4)));
        assert_eq!(TopoSpec::parse("2x2x4"), Some(TopoSpec::new(2, 2, 4)));
        assert_eq!(TopoSpec::parse(" 2 x 2 x 4 "), Some(TopoSpec::new(2, 2, 4)));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "0", "2x0x4", "-1x2", "axb", "1x2x3x4"] {
            assert_eq!(TopoSpec::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn display_roundtrips() {
        let s = TopoSpec::new(2, 3, 4);
        assert_eq!(TopoSpec::parse(&s.to_string()), Some(s));
        assert_eq!("2x3x4".parse::<TopoSpec>(), Ok(s));
        assert!("zzz".parse::<TopoSpec>().is_err());
    }

    #[test]
    fn totals() {
        let s = TopoSpec::new(2, 3, 4);
        assert_eq!(s.total_clusters(), 6);
        assert_eq!(s.total_cores(), 24);
    }
}
