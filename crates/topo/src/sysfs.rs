//! Topology discovery from Linux sysfs.
//!
//! The kernel publishes the machine tree as plain files:
//!
//! * `/sys/devices/system/cpu/online` — the cpulist of usable cpus;
//! * `/sys/devices/system/node/node*/cpulist` — cpus per NUMA node;
//! * `/sys/devices/system/cpu/cpu*/cache/index*/{level,type,shared_cpu_list}`
//!   — the cache hierarchy; the highest-level unified/data cache is the
//!   LLC, and its `shared_cpu_list` names the cores in one cluster.
//!
//! Everything here is plain file I/O, so the module compiles (and
//! returns `None`) on hosts without sysfs — callers fall back to a
//! synthetic [`crate::TopoSpec`]. Discovery is rooted at a path so
//! tests can point it at a fabricated tree and exercise the exact
//! parsing the real machine path uses.

use crate::{TopoSource, Topology};
use std::collections::BTreeMap;
use std::path::Path;

/// Discover the host topology from `/sys`. `None` when sysfs is absent,
/// unreadable, or reports no online cpus.
pub fn discover() -> Option<Topology> {
    discover_at(Path::new("/sys/devices/system"))
}

/// Discover a topology from a sysfs-shaped tree rooted at `root`
/// (`<root>/cpu/online`, `<root>/node/node0/cpulist`, …).
pub fn discover_at(root: &Path) -> Option<Topology> {
    let online = parse_cpulist(&read(root, "cpu/online")?)?;
    if online.is_empty() {
        return None;
    }

    // NUMA node of each cpu; everything defaults to node 0 when the
    // node directory is absent (non-NUMA kernels omit it).
    let mut node_of: BTreeMap<usize, usize> = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(root.join("node")) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name
                .strip_prefix("node")
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let Some(cpus) = read(root, &format!("node/node{id}/cpulist"))
                .as_deref()
                .and_then(parse_cpulist)
            else {
                continue;
            };
            for cpu in cpus {
                node_of.insert(cpu, id);
            }
        }
    }

    // Group online cpus by (node, LLC). A cpu whose cache directory is
    // missing or malformed lands in a per-node catch-all cluster.
    let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for &cpu in &online {
        let node = node_of.get(&cpu).copied().unwrap_or(0);
        let key = llc_key(root, cpu).unwrap_or(usize::MAX);
        groups.entry((node, key)).or_default().push(cpu);
    }
    Some(Topology::from_groups(
        TopoSource::Sysfs,
        groups.into_iter().map(|((n, _), cpus)| (n, cpus)).collect(),
    ))
}

/// Canonical LLC id for `cpu`: the lowest cpu sharing its highest-level
/// unified/data cache. Two cpus get the same key iff they share an LLC.
fn llc_key(root: &Path, cpu: usize) -> Option<usize> {
    let cache = root.join(format!("cpu/cpu{cpu}/cache"));
    let mut best: Option<(u32, usize)> = None;
    for entry in std::fs::read_dir(cache).ok()?.flatten() {
        let name = entry.file_name();
        if !name.to_string_lossy().starts_with("index") {
            continue;
        }
        let dir = entry.path();
        let Some(level) = read_file(&dir.join("level")).and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        // Instruction caches don't hold stream data; skip them.
        match read_file(&dir.join("type")).as_deref() {
            Some("Unified") | Some("Data") => {}
            _ => continue,
        }
        let Some(shared) = read_file(&dir.join("shared_cpu_list"))
            .as_deref()
            .and_then(parse_cpulist)
        else {
            continue;
        };
        let Some(&lowest) = shared.first() else {
            continue;
        };
        if best.is_none_or(|(l, _)| level > l) {
            best = Some((level, lowest));
        }
    }
    best.map(|(_, lowest)| lowest)
}

fn read(root: &Path, rel: &str) -> Option<String> {
    read_file(&root.join(rel))
}

fn read_file(path: &Path) -> Option<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|s| s.trim().to_string())
}

/// Parse a kernel cpulist (`0-3,8,10-11`) into a sorted cpu vector.
/// `None` on malformed input; an empty string is the empty set.
pub fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
    let s = s.trim();
    let mut cpus = Vec::new();
    if s.is_empty() {
        return Some(cpus);
    }
    for part in s.split(',') {
        let part = part.trim();
        match part.split_once('-') {
            Some((a, b)) => {
                let (a, b): (usize, usize) = (a.trim().parse().ok()?, b.trim().parse().ok()?);
                if a > b {
                    return None;
                }
                cpus.extend(a..=b);
            }
            None => cpus.push(part.parse().ok()?),
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    Some(cpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fake_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccs-topo-sysfs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write(root: &Path, rel: &str, content: &str) {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
    }

    /// Fabricate one cpu's cache directory: an L1d private to the cpu
    /// and an L3 shared across `llc`.
    fn write_cpu_caches(root: &Path, cpu: usize, llc: &str) {
        let base = format!("cpu/cpu{cpu}/cache");
        write(root, &format!("{base}/index0/level"), "1");
        write(root, &format!("{base}/index0/type"), "Data");
        write(
            root,
            &format!("{base}/index0/shared_cpu_list"),
            &cpu.to_string(),
        );
        write(root, &format!("{base}/index1/level"), "1");
        write(root, &format!("{base}/index1/type"), "Instruction");
        write(root, &format!("{base}/index1/shared_cpu_list"), "0-63");
        write(root, &format!("{base}/index3/level"), "3");
        write(root, &format!("{base}/index3/type"), "Unified");
        write(root, &format!("{base}/index3/shared_cpu_list"), llc);
    }

    #[test]
    fn cpulist_parses_kernel_forms() {
        assert_eq!(parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpulist("0,2-3,8"), Some(vec![0, 2, 3, 8]));
        assert_eq!(parse_cpulist("5"), Some(vec![5]));
        assert_eq!(parse_cpulist(" 1 , 3 - 4 "), Some(vec![1, 3, 4]));
        assert_eq!(parse_cpulist(""), Some(vec![]));
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("a-b"), None);
    }

    #[test]
    fn discovers_two_nodes_two_llcs_each() {
        let root = fake_root("full");
        write(&root, "cpu/online", "0-7\n");
        write(&root, "node/node0/cpulist", "0-3");
        write(&root, "node/node1/cpulist", "4-7");
        for cpu in 0..8 {
            // LLCs of two cpus each: {0,1} {2,3} {4,5} {6,7}.
            let lo = cpu / 2 * 2;
            write_cpu_caches(&root, cpu, &format!("{}-{}", lo, lo + 1));
        }
        let t = discover_at(&root).unwrap();
        assert_eq!(t.source(), TopoSource::Sysfs);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.cluster_count(), 4);
        assert_eq!(t.core_count(), 8);
        assert_eq!(t.cluster(0).node, 0);
        assert_eq!(t.cluster(3).node, 1);
        // cpus 0,1 share a cluster; 1,2 don't.
        assert_eq!(t.core(0).cluster, t.core(1).cluster);
        assert_ne!(t.core(1).cluster, t.core(2).cluster);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_cache_info_collapses_to_one_cluster_per_node() {
        let root = fake_root("nocache");
        write(&root, "cpu/online", "0-3");
        write(&root, "node/node0/cpulist", "0-1");
        write(&root, "node/node1/cpulist", "2-3");
        let t = discover_at(&root).unwrap();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.cluster_count(), 2);
        assert_eq!(t.core_count(), 4);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_node_dir_defaults_to_one_node() {
        let root = fake_root("nonode");
        write(&root, "cpu/online", "0-1");
        for cpu in 0..2 {
            write_cpu_caches(&root, cpu, "0-1");
        }
        let t = discover_at(&root).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.cluster_count(), 1);
        assert_eq!(t.core_count(), 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unreadable_root_is_none() {
        assert!(discover_at(Path::new("/nonexistent-sysfs-root")).is_none());
    }

    #[test]
    fn offline_cpus_are_excluded() {
        let root = fake_root("offline");
        write(&root, "cpu/online", "0,2");
        for cpu in [0usize, 1, 2] {
            write_cpu_caches(&root, cpu, "0-2");
        }
        let t = discover_at(&root).unwrap();
        assert_eq!(t.core_count(), 2);
        let cpus: Vec<usize> = t.cores().iter().map(|c| c.cpu).collect();
        assert_eq!(cpus, vec![0, 2]);
        std::fs::remove_dir_all(&root).ok();
    }
}
