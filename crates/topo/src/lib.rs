//! # ccs-topo — machine topology for cache-conscious placement
//!
//! The paper's premise is that a segment's working set stays resident in
//! the cache of the core that runs it. For that to survive contact with a
//! real machine, the scheduler has to know *which* caches exist and who
//! shares them: pinning two heavily-communicating segments to cores that
//! share a last-level cache makes their cross traffic an LLC hit instead
//! of a cross-socket transfer (cf. communication-affine core mapping and
//! HPDC'23-style spatial streaming placement).
//!
//! This crate models the machine as a three-level tree
//!
//! ```text
//! machine → NUMA nodes → LLC clusters → cores
//! ```
//!
//! discovered at runtime from Linux sysfs ([`sysfs`]) with a
//! deterministic synthetic fallback ([`TopoSpec`]) so tests and
//! non-Linux hosts behave identically. On top of the tree:
//!
//! * [`Topology::distance`] — the placement cost order
//!   `SameCore < SameLlc < SameNode < CrossNode`;
//! * [`bind`] — a [`CoreBinding`] layer that pins worker threads to
//!   cores via `sched_setaffinity` (raw libc call behind the vendored
//!   shim; graceful no-op off Linux).
//!
//! `ccs-exec` consumes both for its `llc` placement mode and
//! `--pin-cores`.

#![warn(missing_docs)]

pub mod bind;
pub mod distance;
pub mod spec;
pub mod sysfs;

pub use bind::{pin_current_thread, plan_bindings, plan_worker_cores, CoreBinding, PinOutcome};
pub use distance::Distance;
pub use spec::TopoSpec;

/// One hardware execution context (a logical CPU).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Core {
    /// OS logical CPU id (`sched_setaffinity` target).
    pub cpu: usize,
    /// Index of the LLC cluster this core belongs to.
    pub cluster: usize,
    /// Index of the NUMA node this core belongs to.
    pub node: usize,
}

/// A set of cores sharing one last-level cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LlcCluster {
    /// Index of the NUMA node this cluster belongs to.
    pub node: usize,
    /// Core indices (into [`Topology::cores`]), ascending by cpu id.
    pub cores: Vec<usize>,
}

/// One NUMA domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NumaNode {
    /// The OS node id (`/sys/devices/system/node/node<id>`). Node
    /// *indices* are densely renumbered for placement math; this keeps
    /// the original numbering for diagnostics (`numactl`/`lscpu`
    /// cross-referencing), which may be non-contiguous.
    pub os_node: usize,
    /// Cluster indices (into [`Topology::clusters`]).
    pub clusters: Vec<usize>,
}

/// Where a topology came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoSource {
    /// Discovered from Linux `/sys`.
    Sysfs,
    /// Built from a [`TopoSpec`] (tests, non-Linux hosts, CLI `--topo`).
    Synthetic,
    /// Reloaded from a previously dumped description
    /// ([`Topology::from_replay`], CLI `--topo-from`): another (or an
    /// earlier) machine's tree, replayed here for placement inspection.
    Replay,
}

impl TopoSource {
    /// Short lowercase tag for reports (`sysfs`, `synthetic`, `replay`).
    pub fn name(&self) -> &'static str {
        match self {
            TopoSource::Sysfs => "sysfs",
            TopoSource::Synthetic => "synthetic",
            TopoSource::Replay => "replay",
        }
    }
}

/// The machine tree: NUMA nodes → LLC clusters → cores.
///
/// Construction normalizes the layout so consumers can rely on it:
/// nodes are ordered by their original numbering, clusters by
/// `(node, lowest cpu)`, and cores by cpu id within each cluster. Core
/// *indices* therefore enumerate the machine in cache-compact order —
/// walking `0..core_count()` fills one LLC cluster before touching the
/// next, which is exactly the order worker threads want for placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    source: TopoSource,
    nodes: Vec<NumaNode>,
    clusters: Vec<LlcCluster>,
    cores: Vec<Core>,
}

impl Topology {
    /// Assemble a topology from `(node id, cpus)` cluster groups.
    /// Groups are re-ordered deterministically (see type docs); empty
    /// groups are dropped. Panics if no group has a cpu.
    pub(crate) fn from_groups(
        source: TopoSource,
        mut groups: Vec<(usize, Vec<usize>)>,
    ) -> Topology {
        groups.retain(|(_, cpus)| !cpus.is_empty());
        assert!(!groups.is_empty(), "topology needs at least one core");
        for (_, cpus) in &mut groups {
            cpus.sort_unstable();
            cpus.dedup();
        }
        groups.sort_by_key(|(node, cpus)| (*node, cpus[0]));

        // Dense node renumbering in first-appearance (= sorted) order.
        let mut node_ids: Vec<usize> = groups.iter().map(|(n, _)| *n).collect();
        node_ids.dedup();
        let node_index = |n: usize| node_ids.iter().position(|&x| x == n).expect("seen");

        let mut nodes: Vec<NumaNode> = node_ids
            .iter()
            .map(|&os_node| NumaNode {
                os_node,
                clusters: Vec::new(),
            })
            .collect();
        let mut clusters = Vec::with_capacity(groups.len());
        let mut cores = Vec::new();
        for (raw_node, cpus) in groups {
            let node = node_index(raw_node);
            let ci = clusters.len();
            nodes[node].clusters.push(ci);
            let mut members = Vec::with_capacity(cpus.len());
            for cpu in cpus {
                members.push(cores.len());
                cores.push(Core {
                    cpu,
                    cluster: ci,
                    node,
                });
            }
            clusters.push(LlcCluster {
                node,
                cores: members,
            });
        }
        Topology {
            source,
            nodes,
            clusters,
            cores,
        }
    }

    /// Discover the host topology from sysfs; fall back to a flat
    /// synthetic topology (one node, one cluster, one core per unit of
    /// available parallelism) when sysfs is absent or unreadable.
    pub fn discover() -> Topology {
        sysfs::discover().unwrap_or_else(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            Topology::single_cluster(n)
        })
    }

    /// Build the deterministic synthetic topology described by `spec`:
    /// `nodes × clusters × cores`, cpus numbered sequentially from 0.
    pub fn synthetic(spec: &TopoSpec) -> Topology {
        let mut groups = Vec::new();
        let mut cpu = 0usize;
        for n in 0..spec.nodes {
            for _ in 0..spec.clusters_per_node {
                let cpus: Vec<usize> = (0..spec.cores_per_cluster).map(|i| cpu + i).collect();
                cpu += spec.cores_per_cluster;
                groups.push((n, cpus));
            }
        }
        Topology::from_groups(TopoSource::Synthetic, groups)
    }

    /// Rebuild a topology from externally supplied `(OS node id, cpus)`
    /// LLC-cluster groups — the replay path behind `ccs topo --from`
    /// and `run-dag --topo-from`, letting a placement computed for one
    /// machine be inspected on another. Groups are normalized exactly
    /// like discovery (see the type docs); panics if no group has a
    /// cpu, mirroring discovery's invariant.
    pub fn from_replay(groups: Vec<(usize, Vec<usize>)>) -> Topology {
        Topology::from_groups(TopoSource::Replay, groups)
    }

    /// A degenerate machine: `cores` cores all sharing one LLC on one
    /// node. The default when a placement needs a topology and none was
    /// provided — it makes `llc` placement coincide with pure
    /// communication-greedy placement.
    pub fn single_cluster(cores: usize) -> Topology {
        Topology::synthetic(&TopoSpec {
            nodes: 1,
            clusters_per_node: 1,
            cores_per_cluster: cores.max(1),
        })
    }

    /// Where this tree came from (discovery, spec, or replay).
    pub fn source(&self) -> TopoSource {
        self.source
    }

    /// Number of NUMA nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of LLC clusters across all nodes.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of cores (logical CPUs) across all clusters.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The NUMA node at dense index `i`.
    pub fn node(&self, i: usize) -> &NumaNode {
        &self.nodes[i]
    }

    /// The LLC cluster at index `i`.
    pub fn cluster(&self, i: usize) -> &LlcCluster {
        &self.clusters[i]
    }

    /// The core at index `i` (indices enumerate the machine in
    /// cache-compact order; see the type docs).
    pub fn core(&self, i: usize) -> Core {
        self.cores[i]
    }

    /// All NUMA nodes, in dense-index order.
    pub fn nodes(&self) -> &[NumaNode] {
        &self.nodes
    }

    /// All LLC clusters, ordered by `(node, lowest cpu)`.
    pub fn clusters(&self) -> &[LlcCluster] {
        &self.clusters
    }

    /// All cores, in cache-compact order.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Placement distance between two cores (by core index):
    /// `SameCore < SameLlc < SameNode < CrossNode`.
    pub fn distance(&self, a: usize, b: usize) -> Distance {
        if a == b {
            Distance::SameCore
        } else if self.cores[a].cluster == self.cores[b].cluster {
            Distance::SameLlc
        } else if self.cores[a].node == self.cores[b].node {
            Distance::SameNode
        } else {
            Distance::CrossNode
        }
    }

    /// One-line human summary, e.g.
    /// `sysfs: 2 nodes x 4 llc clusters x 16 cores`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} node{} x {} llc cluster{} x {} core{}",
            self.source.name(),
            self.node_count(),
            if self.node_count() == 1 { "" } else { "s" },
            self.cluster_count(),
            if self.cluster_count() == 1 { "" } else { "s" },
            self.core_count(),
            if self.core_count() == 1 { "" } else { "s" },
        )
    }
}

/// Render a cpu set as a compressed kernel-style cpulist (`0-3,8,10-11`).
pub fn format_cpulist(cpus: &[usize]) -> String {
    let mut sorted = cpus.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start;
        while i + 1 < sorted.len() && sorted[i + 1] == end + 1 {
            i += 1;
            end = sorted[i];
        }
        if start == end {
            parts.push(start.to_string());
        } else {
            parts.push(format!("{start}-{end}"));
        }
        i += 1;
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_shape_is_exact() {
        let t = Topology::synthetic(&TopoSpec {
            nodes: 2,
            clusters_per_node: 2,
            cores_per_cluster: 4,
        });
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.cluster_count(), 4);
        assert_eq!(t.core_count(), 16);
        assert_eq!(t.source(), TopoSource::Synthetic);
        // cpus sequential, compact order = index order
        for (i, c) in t.cores().iter().enumerate() {
            assert_eq!(c.cpu, i);
        }
        // clusters 0,1 on node 0; 2,3 on node 1
        assert_eq!(t.cluster(0).node, 0);
        assert_eq!(t.cluster(3).node, 1);
        assert_eq!(t.node(1).clusters, vec![2, 3]);
    }

    #[test]
    fn distance_ordering_matches_tree() {
        let t = Topology::synthetic(&TopoSpec {
            nodes: 2,
            clusters_per_node: 2,
            cores_per_cluster: 2,
        });
        assert_eq!(t.distance(0, 0), Distance::SameCore);
        assert_eq!(t.distance(0, 1), Distance::SameLlc);
        assert_eq!(t.distance(0, 2), Distance::SameNode);
        assert_eq!(t.distance(0, 4), Distance::CrossNode);
        assert!(t.distance(0, 0) < t.distance(0, 1));
        assert!(t.distance(0, 1) < t.distance(0, 2));
        assert!(t.distance(0, 2) < t.distance(0, 4));
        // symmetric
        assert_eq!(t.distance(4, 0), Distance::CrossNode);
    }

    #[test]
    fn from_groups_normalizes_order() {
        // Shuffled nodes, unsorted cpus, an empty group.
        let t = Topology::from_groups(
            TopoSource::Synthetic,
            vec![(7, vec![9, 8]), (3, vec![]), (3, vec![4, 1]), (7, vec![2])],
        );
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.cluster_count(), 3);
        // Node 3 renumbered to 0, node 7 to 1; clusters by (node, min cpu).
        assert_eq!(t.cluster(0).node, 0);
        // The original OS numbering survives for diagnostics.
        assert_eq!(t.node(0).os_node, 3);
        assert_eq!(t.node(1).os_node, 7);
        let cpus: Vec<usize> = t.cores().iter().map(|c| c.cpu).collect();
        assert_eq!(cpus, vec![1, 4, 2, 8, 9]);
    }

    #[test]
    fn discover_always_yields_cores() {
        let t = Topology::discover();
        assert!(t.core_count() >= 1);
        assert!(t.cluster_count() >= 1);
        assert!(t.node_count() >= 1);
        // every core's back-pointers are consistent
        for (i, c) in t.cores().iter().enumerate() {
            assert!(t.cluster(c.cluster).cores.contains(&i));
            assert_eq!(t.cluster(c.cluster).node, c.node);
        }
    }

    #[test]
    fn replay_rebuilds_a_dumped_tree() {
        // Shaped like a `ccs topo --json` dump of a 2-node machine with
        // non-contiguous OS node ids.
        let t = Topology::from_replay(vec![(0, vec![0, 1]), (0, vec![2, 3]), (2, vec![4, 5])]);
        assert_eq!(t.source(), TopoSource::Replay);
        assert_eq!(t.source().name(), "replay");
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.cluster_count(), 3);
        assert_eq!(t.core_count(), 6);
        assert_eq!(t.node(1).os_node, 2);
        assert_eq!(t.distance(0, 1), Distance::SameLlc);
        assert_eq!(t.distance(0, 2), Distance::SameNode);
        assert_eq!(t.distance(0, 4), Distance::CrossNode);
    }

    #[test]
    fn cpulist_formatting() {
        assert_eq!(format_cpulist(&[0, 1, 2, 3]), "0-3");
        assert_eq!(format_cpulist(&[3, 1, 0, 2]), "0-3");
        assert_eq!(format_cpulist(&[0, 2, 3, 8]), "0,2-3,8");
        assert_eq!(format_cpulist(&[5]), "5");
        assert_eq!(format_cpulist(&[]), "");
    }

    #[test]
    fn summary_mentions_source_and_counts() {
        let t = Topology::single_cluster(4);
        let s = t.summary();
        assert!(s.contains("synthetic"), "{s}");
        assert!(s.contains("4 cores"), "{s}");
    }
}
