//! The placement cost order between two cores.

use std::fmt;

/// How far apart two cores sit in the cache/interconnect tree. The
/// derived `Ord` encodes the placement cost order the paper's
/// cache-residency argument needs:
/// `SameCore < SameLlc < SameNode < CrossNode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Distance {
    /// The same hardware execution context: traffic never leaves the
    /// core's private caches.
    SameCore,
    /// Different cores sharing a last-level cache: cross traffic is an
    /// LLC hit.
    SameLlc,
    /// Same NUMA node, different LLC: traffic goes through the on-die
    /// interconnect but stays on local memory.
    SameNode,
    /// Different NUMA nodes: the expensive case every placement tries
    /// to starve of traffic.
    CrossNode,
}

impl Distance {
    /// Short lowercase tag for reports (`same-llc`, `cross-node`, …).
    pub fn name(&self) -> &'static str {
        match self {
            Distance::SameCore => "same-core",
            Distance::SameLlc => "same-llc",
            Distance::SameNode => "same-node",
            Distance::CrossNode => "cross-node",
        }
    }

    /// Affinity weight for placement scoring: one unit of edge traffic
    /// at this distance is worth this many score points, so a greedy
    /// placement prefers keeping communicating segments as close as the
    /// load cap allows. Monotone decreasing in distance; `CrossNode`
    /// traffic is worthless.
    pub fn affinity_weight(&self) -> u64 {
        match self {
            Distance::SameCore => 4,
            Distance::SameLlc => 2,
            Distance::SameNode => 1,
            Distance::CrossNode => 0,
        }
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_the_cost_order() {
        assert!(Distance::SameCore < Distance::SameLlc);
        assert!(Distance::SameLlc < Distance::SameNode);
        assert!(Distance::SameNode < Distance::CrossNode);
    }

    #[test]
    fn weights_decrease_with_distance() {
        let ws: Vec<u64> = [
            Distance::SameCore,
            Distance::SameLlc,
            Distance::SameNode,
            Distance::CrossNode,
        ]
        .iter()
        .map(|d| d.affinity_weight())
        .collect();
        assert!(ws.windows(2).all(|w| w[0] > w[1]), "{ws:?}");
        assert_eq!(ws[3], 0);
    }

    #[test]
    fn names_render() {
        assert_eq!(Distance::SameLlc.to_string(), "same-llc");
    }
}
