//! Binding worker threads to cores.
//!
//! Segment→worker affinity only pays off if the worker actually stays
//! on one core: otherwise the OS migrates the thread and the segment's
//! working set follows it from cache to cache. [`plan_bindings`] deals
//! workers onto cores in the topology's cache-compact order (fill one
//! LLC cluster before touching the next), and [`pin_current_thread`]
//! applies a binding with `sched_setaffinity` — a raw syscall through
//! the vendored `libc` shim on Linux, a graceful no-op elsewhere.

use crate::Topology;

/// One worker's planned core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreBinding {
    /// Worker index (0-based).
    pub worker: usize,
    /// Core index into [`Topology::cores`].
    pub core: usize,
    /// OS logical cpu id to pin to.
    pub cpu: usize,
}

/// What happened when a thread tried to pin itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinOutcome {
    /// The affinity mask was applied.
    Pinned,
    /// The kernel rejected the mask (cpu offline, outside the cgroup's
    /// cpuset, or a synthetic cpu id this machine doesn't have). The
    /// thread keeps its previous affinity and the run proceeds unpinned.
    Failed,
    /// Not a Linux host; pinning is compiled out.
    Unsupported,
}

impl PinOutcome {
    pub fn pinned(&self) -> bool {
        matches!(self, PinOutcome::Pinned)
    }

    pub fn name(&self) -> &'static str {
        match self {
            PinOutcome::Pinned => "pinned",
            PinOutcome::Failed => "failed",
            PinOutcome::Unsupported => "unsupported",
        }
    }
}

/// Deal `workers` workers onto cores: worker `w` takes core `w mod
/// cores` in the topology's cache-compact core order, so consecutive
/// workers pack one LLC cluster before spilling into the next, and
/// oversubscribed runs (workers > cores) wrap around.
pub fn plan_bindings(topo: &Topology, workers: usize) -> Vec<CoreBinding> {
    (0..workers)
        .map(|w| {
            let core = w % topo.core_count();
            CoreBinding {
                worker: w,
                core,
                cpu: topo.core(core).cpu,
            }
        })
        .collect()
}

/// Size of the affinity mask in 64-bit words (covers 1024 cpus, same as
/// glibc's `cpu_set_t`).
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `cpu` (no-op off Linux).
pub fn pin_current_thread(cpu: usize) -> PinOutcome {
    set_affinity(std::slice::from_ref(&cpu))
}

/// The set of cpus the calling thread may run on, ascending. `None`
/// where unsupported or on syscall failure.
#[cfg(target_os = "linux")]
pub fn current_affinity() -> Option<Vec<usize>> {
    let mut mask = [0u64; MASK_WORDS];
    let rc = unsafe { libc::sched_getaffinity(0, MASK_WORDS * 8, mask.as_mut_ptr()) };
    if rc != 0 {
        return None;
    }
    let mut cpus = Vec::new();
    for (w, &word) in mask.iter().enumerate() {
        for b in 0..64 {
            if word & (1u64 << b) != 0 {
                cpus.push(w * 64 + b);
            }
        }
    }
    Some(cpus)
}

/// The set of cpus the calling thread may run on (`None` off Linux).
#[cfg(not(target_os = "linux"))]
pub fn current_affinity() -> Option<Vec<usize>> {
    None
}

/// Restrict the calling thread to `cpus` (single-cpu pinning and
/// restoring a previously observed set are both this call). `Failed`
/// leaves the previous affinity intact.
#[cfg(target_os = "linux")]
pub fn set_affinity(cpus: &[usize]) -> PinOutcome {
    let mut mask = [0u64; MASK_WORDS];
    for &cpu in cpus {
        if cpu >= MASK_WORDS * 64 {
            return PinOutcome::Failed;
        }
        mask[cpu / 64] |= 1u64 << (cpu % 64);
    }
    let rc = unsafe { libc::sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
    if rc == 0 {
        PinOutcome::Pinned
    } else {
        PinOutcome::Failed
    }
}

/// Restrict the calling thread to `cpus` (no-op off Linux).
#[cfg(not(target_os = "linux"))]
pub fn set_affinity(_cpus: &[usize]) -> PinOutcome {
    PinOutcome::Unsupported
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopoSpec;

    #[test]
    fn bindings_fill_clusters_compactly() {
        let t = Topology::synthetic(&TopoSpec::new(1, 2, 2));
        let b = plan_bindings(&t, 6);
        assert_eq!(b.len(), 6);
        // Cores 0,1 are cluster 0; 2,3 cluster 1; then wrap.
        let cores: Vec<usize> = b.iter().map(|x| x.core).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 0, 1]);
        assert!(b.iter().all(|x| x.cpu == t.core(x.core).cpu));
        assert_eq!(t.core(b[0].core).cluster, t.core(b[1].core).cluster);
        assert_ne!(t.core(b[1].core).cluster, t.core(b[2].core).cluster);
    }

    #[test]
    fn absurd_cpu_id_fails_cleanly() {
        let out = pin_current_thread(usize::MAX);
        assert!(!out.pinned());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_and_restore_on_linux() {
        let Some(before) = current_affinity() else {
            return; // kernel said no; nothing to test
        };
        assert!(!before.is_empty());
        let target = before[0];
        assert_eq!(pin_current_thread(target), PinOutcome::Pinned);
        assert_eq!(current_affinity(), Some(vec![target]));
        assert_eq!(set_affinity(&before), PinOutcome::Pinned);
        assert_eq!(current_affinity(), Some(before));
    }

    #[test]
    fn outcome_names() {
        assert_eq!(PinOutcome::Pinned.name(), "pinned");
        assert!(PinOutcome::Pinned.pinned());
        assert!(!PinOutcome::Unsupported.pinned());
    }
}
