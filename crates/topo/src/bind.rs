//! Binding worker threads to cores.
//!
//! Segment→worker affinity only pays off if the worker actually stays
//! on one core: otherwise the OS migrates the thread and the segment's
//! working set follows it from cache to cache. [`plan_bindings`] deals
//! workers onto cores in the topology's cache-compact order (fill one
//! LLC cluster before touching the next), and [`pin_current_thread`]
//! applies a binding with `sched_setaffinity` — a raw syscall through
//! the vendored `libc` shim on Linux, a graceful no-op elsewhere.

use crate::Topology;

/// One worker's planned core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreBinding {
    /// Worker index (0-based).
    pub worker: usize,
    /// Core index into [`Topology::cores`].
    pub core: usize,
    /// OS logical cpu id to pin to.
    pub cpu: usize,
}

/// What happened when a thread tried to pin itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinOutcome {
    /// The affinity mask was applied.
    Pinned,
    /// The kernel rejected the mask (cpu offline, outside the cgroup's
    /// cpuset, or a synthetic cpu id this machine doesn't have). The
    /// thread keeps its previous affinity and the run proceeds unpinned.
    Failed,
    /// Not a Linux host; pinning is compiled out.
    Unsupported,
}

impl PinOutcome {
    /// Whether the affinity mask actually took effect.
    pub fn pinned(&self) -> bool {
        matches!(self, PinOutcome::Pinned)
    }

    /// Short lowercase tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PinOutcome::Pinned => "pinned",
            PinOutcome::Failed => "failed",
            PinOutcome::Unsupported => "unsupported",
        }
    }
}

/// Plan which core each worker runs on, worker-count aware:
///
/// * **Spread** (`workers ≤ LLC clusters`): worker `w` takes the first
///   core of cluster `w`. Each worker gets a whole last-level cache to
///   itself — its segments' working sets never contend with a peer's —
///   and because clusters are ordered by `(node, lowest cpu)`, workers
///   still fill one NUMA node's clusters before touching the next
///   (cache-compact spreading, not a scatter).
/// * **Pack** (`workers > clusters`): worker `w` takes core `w mod
///   cores` in cache-compact core order, so consecutive workers fill
///   one LLC cluster before spilling into the next, and oversubscribed
///   runs (workers > cores) wrap around.
///
/// `ccs-exec` uses the same mapping for placement scoring and for
/// pinning, so the distance a placement was optimized for is the
/// distance the pinned run actually has.
pub fn plan_worker_cores(topo: &Topology, workers: usize) -> Vec<usize> {
    if workers <= topo.cluster_count() {
        (0..workers).map(|w| topo.cluster(w).cores[0]).collect()
    } else {
        (0..workers).map(|w| w % topo.core_count()).collect()
    }
}

/// Deal `workers` workers onto cores per [`plan_worker_cores`],
/// resolving each planned core index to its OS cpu id for
/// [`pin_current_thread`].
pub fn plan_bindings(topo: &Topology, workers: usize) -> Vec<CoreBinding> {
    plan_worker_cores(topo, workers)
        .into_iter()
        .enumerate()
        .map(|(w, core)| CoreBinding {
            worker: w,
            core,
            cpu: topo.core(core).cpu,
        })
        .collect()
}

/// Size of the affinity mask in 64-bit words (covers 1024 cpus, same as
/// glibc's `cpu_set_t`).
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `cpu` (no-op off Linux).
pub fn pin_current_thread(cpu: usize) -> PinOutcome {
    set_affinity(std::slice::from_ref(&cpu))
}

/// The set of cpus the calling thread may run on, ascending. `None`
/// where unsupported or on syscall failure.
#[cfg(target_os = "linux")]
pub fn current_affinity() -> Option<Vec<usize>> {
    let mut mask = [0u64; MASK_WORDS];
    let rc = unsafe { libc::sched_getaffinity(0, MASK_WORDS * 8, mask.as_mut_ptr()) };
    if rc != 0 {
        return None;
    }
    let mut cpus = Vec::new();
    for (w, &word) in mask.iter().enumerate() {
        for b in 0..64 {
            if word & (1u64 << b) != 0 {
                cpus.push(w * 64 + b);
            }
        }
    }
    Some(cpus)
}

/// The set of cpus the calling thread may run on (`None` off Linux).
#[cfg(not(target_os = "linux"))]
pub fn current_affinity() -> Option<Vec<usize>> {
    None
}

/// Restrict the calling thread to `cpus` (single-cpu pinning and
/// restoring a previously observed set are both this call). `Failed`
/// leaves the previous affinity intact.
#[cfg(target_os = "linux")]
pub fn set_affinity(cpus: &[usize]) -> PinOutcome {
    let mut mask = [0u64; MASK_WORDS];
    for &cpu in cpus {
        if cpu >= MASK_WORDS * 64 {
            return PinOutcome::Failed;
        }
        mask[cpu / 64] |= 1u64 << (cpu % 64);
    }
    let rc = unsafe { libc::sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
    if rc == 0 {
        PinOutcome::Pinned
    } else {
        PinOutcome::Failed
    }
}

/// Restrict the calling thread to `cpus` (no-op off Linux).
#[cfg(not(target_os = "linux"))]
pub fn set_affinity(_cpus: &[usize]) -> PinOutcome {
    PinOutcome::Unsupported
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopoSpec;

    #[test]
    fn bindings_fill_clusters_compactly() {
        let t = Topology::synthetic(&TopoSpec::new(1, 2, 2));
        let b = plan_bindings(&t, 6);
        assert_eq!(b.len(), 6);
        // 6 workers > 2 clusters: pack mode. Cores 0,1 are cluster 0;
        // 2,3 cluster 1; then wrap.
        let cores: Vec<usize> = b.iter().map(|x| x.core).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 0, 1]);
        assert!(b.iter().all(|x| x.cpu == t.core(x.core).cpu));
        assert_eq!(t.core(b[0].core).cluster, t.core(b[1].core).cluster);
        assert_ne!(t.core(b[1].core).cluster, t.core(b[2].core).cluster);
    }

    #[test]
    fn few_workers_spread_one_per_llc_cluster() {
        // 2 workers on a 2-cluster box: each gets its own LLC.
        let t = Topology::synthetic(&TopoSpec::new(1, 2, 2));
        assert_eq!(plan_worker_cores(&t, 2), vec![0, 2]);
        // 3 workers on a 2-node × 2-cluster × 2-core box: node 0's two
        // clusters first, then node 1's first cluster — compact spread.
        let t = Topology::synthetic(&TopoSpec::new(2, 2, 2));
        let cores = plan_worker_cores(&t, 3);
        assert_eq!(cores, vec![0, 2, 4]);
        let clusters: Vec<usize> = cores.iter().map(|&c| t.core(c).cluster).collect();
        assert_eq!(clusters, vec![0, 1, 2]);
        assert_eq!(t.core(cores[0]).node, t.core(cores[1]).node);
        // One worker: first core either way.
        assert_eq!(plan_worker_cores(&t, 1), vec![0]);
        // Exactly at the boundary (workers == clusters): still spread.
        assert_eq!(plan_worker_cores(&t, 4), vec![0, 2, 4, 6]);
        // Past it: pack.
        assert_eq!(plan_worker_cores(&t, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn absurd_cpu_id_fails_cleanly() {
        let out = pin_current_thread(usize::MAX);
        assert!(!out.pinned());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_and_restore_on_linux() {
        let Some(before) = current_affinity() else {
            return; // kernel said no; nothing to test
        };
        assert!(!before.is_empty());
        let target = before[0];
        assert_eq!(pin_current_thread(target), PinOutcome::Pinned);
        assert_eq!(current_affinity(), Some(vec![target]));
        assert_eq!(set_affinity(&before), PinOutcome::Pinned);
        assert_eq!(current_affinity(), Some(before));
    }

    #[test]
    fn outcome_names() {
        assert_eq!(PinOutcome::Pinned.name(), "pinned");
        assert!(PinOutcome::Pinned.pinned());
        assert!(!PinOutcome::Unsupported.pinned());
    }
}
