//! Exact rational arithmetic over `i128`.
//!
//! Gains in a synchronous dataflow graph are products of `out/in` rate
//! ratios (Definition 1 of the paper) and must be computed exactly:
//! floating point would mis-classify rate-matched graphs. The numbers stay
//! small for all graphs our generators produce (they are quotients of
//! repetition-vector entries), but every operation is overflow-checked and
//! the panicking operators are documented as such.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Greatest common divisor (non-negative result, `gcd(0, 0) == 0`).
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor over `u64`.
pub fn gcd_u64(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple over `i128`, checked. `lcm(0, x) == 0`.
pub fn checked_lcm_i128(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd_i128(a, b);
    (a / g).checked_mul(b)?.checked_abs()
}

/// Least common multiple over `u64`, checked.
pub fn checked_lcm_u64(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd_u64(a, b);
    (a / g).checked_mul(b)
}

/// An exact rational number: `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: i128,
    den: i128,
}

impl Ratio {
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Construct and normalize. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        Self::checked_new(num, den).expect("Ratio::new: zero denominator")
    }

    /// Construct and normalize; `None` if `den == 0`.
    pub fn checked_new(num: i128, den: i128) -> Option<Ratio> {
        if den == 0 {
            return None;
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den);
        if g == 0 {
            return Some(Ratio::ZERO);
        }
        Some(Ratio {
            num: sign * (num / g),
            den: (den / g).abs(),
        })
    }

    /// The integer `n` as a ratio.
    pub const fn integer(n: i128) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Exact integer value, if integral.
    pub fn to_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        if self.num > 0 {
            (self.num + self.den - 1) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Lossy conversion for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    pub fn checked_add(&self, rhs: Ratio) -> Option<Ratio> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d): keeps
        // intermediates small for the common case of shared denominators.
        let l = checked_lcm_i128(self.den, rhs.den)?;
        let lhs_num = self.num.checked_mul(l / self.den)?;
        let rhs_num = rhs.num.checked_mul(l / rhs.den)?;
        Ratio::checked_new(lhs_num.checked_add(rhs_num)?, l)
    }

    pub fn checked_sub(&self, rhs: Ratio) -> Option<Ratio> {
        self.checked_add(Ratio {
            num: rhs.num.checked_neg()?,
            den: rhs.den,
        })
    }

    pub fn checked_mul(&self, rhs: Ratio) -> Option<Ratio> {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd_i128(self.num, rhs.den).max(1);
        let g2 = gcd_i128(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Ratio::checked_new(num, den)
    }

    pub fn checked_div(&self, rhs: Ratio) -> Option<Ratio> {
        if rhs.num == 0 {
            return None;
        }
        self.checked_mul(Ratio {
            num: rhs.den,
            den: rhs.num,
        })
    }

    /// Reciprocal; `None` for zero.
    pub fn recip(&self) -> Option<Ratio> {
        Ratio::checked_new(self.den, self.num)
    }

    /// Comparison that reports `None` on internal overflow.
    pub fn checked_cmp(&self, rhs: &Ratio) -> Option<Ordering> {
        // Reduce cross terms first: a/b vs c/d  <=>  a*d vs c*b.
        let g_num = gcd_i128(self.num, rhs.num).max(1);
        let g_den = gcd_i128(self.den, rhs.den).max(1);
        let lhs = (self.num / g_num).checked_mul(rhs.den / g_den)?;
        let rhs_v = (rhs.num / g_num).checked_mul(self.den / g_den)?;
        Some(lhs.cmp(&rhs_v))
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    /// Panics on internal i128 overflow (unreachable for repetition-vector
    /// quotients, which are bounded by the vector entries themselves).
    fn cmp(&self, other: &Self) -> Ordering {
        self.checked_cmp(other).expect("Ratio::cmp overflow")
    }
}

impl std::ops::Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        self.checked_add(rhs).expect("Ratio add overflow")
    }
}

impl std::ops::Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self.checked_sub(rhs).expect("Ratio sub overflow")
    }
}

impl std::ops::Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        self.checked_mul(rhs).expect("Ratio mul overflow")
    }
}

impl std::ops::Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        self.checked_div(rhs)
            .expect("Ratio div by zero or overflow")
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |acc, x| acc + x)
    }
}

impl From<i128> for Ratio {
    fn from(n: i128) -> Ratio {
        Ratio::integer(n)
    }
}

impl From<u64> for Ratio {
    fn from(n: u64) -> Ratio {
        Ratio::integer(n as i128)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_on_construction() {
        let r = Ratio::new(6, 4);
        assert_eq!(r.num(), 3);
        assert_eq!(r.den(), 2);
        let r = Ratio::new(-6, 4);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 2);
        let r = Ratio::new(6, -4);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 2);
        let r = Ratio::new(0, -7);
        assert_eq!(r, Ratio::ZERO);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(Ratio::checked_new(1, 0).is_none());
    }

    #[test]
    fn arithmetic_identities() {
        let a = Ratio::new(2, 3);
        let b = Ratio::new(3, 4);
        assert_eq!(a + b, Ratio::new(17, 12));
        assert_eq!(a - b, Ratio::new(-1, 12));
        assert_eq!(a * b, Ratio::new(1, 2));
        assert_eq!(a / b, Ratio::new(8, 9));
        assert_eq!(a * a.recip().unwrap(), Ratio::ONE);
    }

    #[test]
    fn floor_ceil_negative() {
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::integer(5).floor(), 5);
        assert_eq!(Ratio::integer(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        let mut v = vec![
            Ratio::new(1, 2),
            Ratio::new(-1, 3),
            Ratio::ONE,
            Ratio::ZERO,
            Ratio::new(7, 8),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Ratio::new(-1, 3),
                Ratio::ZERO,
                Ratio::new(1, 2),
                Ratio::new(7, 8),
                Ratio::ONE,
            ]
        );
    }

    #[test]
    fn sum_iterator() {
        let s: Ratio = (1..=4).map(|i| Ratio::new(1, i)).sum();
        assert_eq!(s, Ratio::new(25, 12));
    }

    #[test]
    fn gcd_lcm_helpers() {
        assert_eq!(gcd_i128(12, 18), 6);
        assert_eq!(gcd_i128(-12, 18), 6);
        assert_eq!(gcd_i128(0, 0), 0);
        assert_eq!(gcd_u64(35, 14), 7);
        assert_eq!(checked_lcm_i128(4, 6), Some(12));
        assert_eq!(checked_lcm_u64(0, 5), Some(0));
        assert_eq!(checked_lcm_u64(21, 6), Some(42));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Ratio::new(3, 2)), "3/2");
        assert_eq!(format!("{}", Ratio::integer(-4)), "-4");
    }

    #[test]
    fn cross_reduced_mul_avoids_overflow() {
        // (big/3) * (3/big) must not overflow even though naive products do.
        let big = i128::MAX / 2;
        let a = Ratio::new(big, 3);
        let b = Ratio::new(3, big);
        assert_eq!(a.checked_mul(b), Some(Ratio::ONE));
    }
}
