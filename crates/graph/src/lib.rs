//! # ccs-graph — synchronous-dataflow streaming graphs
//!
//! The streaming-model substrate for the SPAA 2012 paper *"Cache-Conscious
//! Scheduling of Streaming Applications"*: directed acyclic multigraphs of
//! computation modules connected by rate-annotated FIFO channels.
//!
//! * [`StreamGraph`] / [`GraphBuilder`] — the graph representation (§2 of
//!   the paper). Construction validates acyclicity and rate positivity.
//! * [`RateAnalysis`] — rate-matching validation, minimal repetition
//!   vectors (Lee–Messerschmitt balance equations), and the paper's *gain*
//!   of nodes and edges (Definition 1).
//! * [`Ratio`] — exact rational arithmetic backing the above.
//! * [`buffers`] — minimum channel-buffer sizes `minBuf(e)`.
//! * [`topo`] — topological orders, precedence `u ≺ v`, reachability.
//! * [`gen`] — synthetic workload generators (pipelines, layered dags,
//!   split-joins, butterflies, series-parallel), all rate matched by
//!   construction.
//! * [`stats`] — structural statistics (depth, width, traffic).
//! * [`transform`] — validity-preserving transformations (rate/state
//!   scaling, reversal, induced subgraphs).
//! * [`dot`] — Graphviz export.

pub mod analysis;
pub mod buffers;
pub mod dot;
pub mod gen;
pub mod graph;
pub mod ratio;
pub mod stats;
pub mod topo;
pub mod transform;

pub use analysis::{RateAnalysis, RateError};
pub use graph::{Edge, EdgeId, GraphBuilder, GraphError, Node, NodeId, StreamGraph};
pub use ratio::Ratio;
