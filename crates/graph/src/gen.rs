//! Synthetic streaming-graph generators.
//!
//! All generators with nonunit rates construct graphs *q-first*: each node
//! is assigned a target repetition count, and edge rates are derived from
//! the balance equations, so every generated graph is rate matched by
//! construction and its repetition vector stays small (exact arithmetic
//! never overflows).

use crate::analysis::RateAnalysis;
use crate::graph::{GraphBuilder, NodeId, StreamGraph};
use crate::ratio::gcd_u64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How module state sizes are drawn.
#[derive(Clone, Copy, Debug)]
pub enum StateDist {
    /// Every module has exactly this state (words).
    Fixed(u64),
    /// Uniform in `[lo, hi]`.
    Uniform(u64, u64),
    /// `Bimodal { small, large, p_large }`: mostly `small`, occasionally
    /// `large` — models a few heavyweight kernels among light glue.
    Bimodal {
        small: u64,
        large: u64,
        p_large: f64,
    },
}

impl StateDist {
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            StateDist::Fixed(s) => s,
            StateDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
            StateDist::Bimodal {
                small,
                large,
                p_large,
            } => {
                if rng.gen_bool(p_large) {
                    large
                } else {
                    small
                }
            }
        }
    }
}

/// Configuration for random pipelines.
#[derive(Clone, Debug)]
pub struct PipelineCfg {
    /// Number of modules (>= 2).
    pub len: usize,
    pub state: StateDist,
    /// Maximum per-node repetition count; 1 gives a homogeneous pipeline.
    pub max_q: u64,
    /// Edge rates are scaled by a random factor in `1..=max_rate_scale`.
    pub max_rate_scale: u64,
}

impl Default for PipelineCfg {
    fn default() -> Self {
        PipelineCfg {
            len: 16,
            state: StateDist::Uniform(64, 512),
            max_q: 4,
            max_rate_scale: 3,
        }
    }
}

/// A homogeneous pipeline of `len` modules, each with `state` words.
pub fn pipeline_uniform(len: usize, state: u64) -> StreamGraph {
    assert!(len >= 1);
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = (0..len).map(|i| b.node(format!("p{i}"), state)).collect();
    for w in ids.windows(2) {
        b.edge(w[0], w[1], 1, 1);
    }
    b.build().expect("uniform pipeline is valid")
}

/// A random (possibly inhomogeneous) pipeline; rate matched by
/// construction.
pub fn pipeline(cfg: &PipelineCfg, seed: u64) -> StreamGraph {
    assert!(cfg.len >= 2, "pipeline needs at least two modules");
    assert!(cfg.max_q >= 1 && cfg.max_rate_scale >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let q: Vec<u64> = (0..cfg.len).map(|_| rng.gen_range(1..=cfg.max_q)).collect();
    let ids: Vec<NodeId> = (0..cfg.len)
        .map(|i| b.node(format!("p{i}"), cfg.state.sample(&mut rng)))
        .collect();
    for i in 0..cfg.len - 1 {
        let (qu, qv) = (q[i], q[i + 1]);
        let g = gcd_u64(qu, qv);
        let k = rng.gen_range(1..=cfg.max_rate_scale);
        // Balance: q(u)*produce == q(v)*consume.
        b.edge(ids[i], ids[i + 1], (qv / g) * k, (qu / g) * k);
    }
    b.build().expect("generated pipeline is valid")
}

/// Configuration for layered dags.
#[derive(Clone, Debug)]
pub struct LayeredCfg {
    /// Number of interior layers (>= 1).
    pub layers: usize,
    /// Width of each interior layer is uniform in `1..=max_width`.
    pub max_width: usize,
    /// Probability of each possible extra edge between adjacent layers
    /// (beyond the spanning connections).
    pub density: f64,
    pub state: StateDist,
    /// Maximum per-node repetition count; 1 gives a homogeneous dag.
    pub max_q: u64,
}

impl Default for LayeredCfg {
    fn default() -> Self {
        LayeredCfg {
            layers: 4,
            max_width: 4,
            density: 0.25,
            state: StateDist::Uniform(64, 512),
            max_q: 1,
        }
    }
}

/// A layered dag with a unique source and sink; homogeneous iff
/// `cfg.max_q == 1`. Every interior node lies on a source-to-sink path.
pub fn layered(cfg: &LayeredCfg, seed: u64) -> StreamGraph {
    assert!(cfg.layers >= 1 && cfg.max_width >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    // Node repetition targets; derive all edge rates from these.
    let mut q_of: Vec<u64> = Vec::new();
    let push_node = |b: &mut GraphBuilder,
                     name: String,
                     rng: &mut SmallRng,
                     q_of: &mut Vec<u64>,
                     state: u64,
                     q: u64|
     -> NodeId {
        let id = b.node(name, state);
        debug_assert_eq!(id.idx(), q_of.len());
        q_of.push(q);
        let _ = rng;
        id
    };

    let src_state = cfg.state.sample(&mut rng);
    let source = push_node(&mut b, "source".into(), &mut rng, &mut q_of, src_state, 1);

    let mut prev_layer = vec![source];
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for l in 0..cfg.layers {
        let width = rng.gen_range(1..=cfg.max_width);
        let mut layer = Vec::with_capacity(width);
        for i in 0..width {
            let st = cfg.state.sample(&mut rng);
            let q = rng.gen_range(1..=cfg.max_q);
            let v = push_node(&mut b, format!("l{l}n{i}"), &mut rng, &mut q_of, st, q);
            // Spanning edge from a random node in the previous layer keeps
            // every node reachable from the source.
            let u = prev_layer[rng.gen_range(0..prev_layer.len())];
            edges.push((u, v));
            layer.push(v);
        }
        // Extra density edges.
        for &u in &prev_layer {
            for &v in &layer {
                if !edges.contains(&(u, v)) && rng.gen_bool(cfg.density) {
                    edges.push((u, v));
                }
            }
        }
        prev_layer = layer;
    }
    let sink_state = cfg.state.sample(&mut rng);
    let sink = push_node(&mut b, "sink".into(), &mut rng, &mut q_of, sink_state, 1);
    // Everything without a successor inside the last layers connects to the
    // sink; simplest: connect all members of the final layer, plus any
    // interior node that ended up with no out-edge.
    let mut has_out = vec![false; q_of.len()];
    for &(u, _) in &edges {
        has_out[u.idx()] = true;
    }
    for &v in &prev_layer {
        edges.push((v, sink));
        has_out[v.idx()] = true;
    }
    for (i, &out) in has_out.iter().enumerate() {
        let v = NodeId(i as u32);
        if v != sink && !out {
            edges.push((v, sink));
        }
    }
    for (u, v) in edges {
        let (qu, qv) = (q_of[u.idx()], q_of[v.idx()]);
        let g = gcd_u64(qu, qv);
        b.edge(u, v, qv / g, qu / g);
    }
    b.build().expect("generated layered dag is valid")
}

/// A split-join (StreamIt-style): source -> split -> `branches` chains of
/// `chain_len` modules -> join -> sink. Homogeneous rates.
pub fn split_join(branches: usize, chain_len: usize, state: StateDist, seed: u64) -> StreamGraph {
    assert!(branches >= 1 && chain_len >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let source = b.node("source", state.sample(&mut rng));
    let split = b.node("split", state.sample(&mut rng));
    b.edge(source, split, 1, 1);
    let join = b.node("join", state.sample(&mut rng));
    for br in 0..branches {
        let mut prev = split;
        for i in 0..chain_len {
            let v = b.node(format!("b{br}m{i}"), state.sample(&mut rng));
            b.edge(prev, v, 1, 1);
            prev = v;
        }
        b.edge(prev, join, 1, 1);
    }
    let sink = b.node("sink", state.sample(&mut rng));
    b.edge(join, sink, 1, 1);
    b.build().expect("split-join is valid")
}

/// A butterfly (FFT-style) network with `stages` stages over `width = 2^k`
/// lanes, merged from a single source and into a single sink. Homogeneous.
pub fn butterfly(log_width: u32, state: StateDist, seed: u64) -> StreamGraph {
    let width = 1usize << log_width;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let source = b.node("source", state.sample(&mut rng));
    let mut prev: Vec<NodeId> = (0..width)
        .map(|i| b.node(format!("in{i}"), state.sample(&mut rng)))
        .collect();
    for &v in &prev {
        b.edge(source, v, 1, 1);
    }
    for stage in 0..log_width {
        let stride = 1usize << stage;
        let cur: Vec<NodeId> = (0..width)
            .map(|i| b.node(format!("s{stage}n{i}"), state.sample(&mut rng)))
            .collect();
        for i in 0..width {
            b.edge(prev[i], cur[i], 1, 1);
            b.edge(prev[i ^ stride], cur[i], 1, 1);
        }
        prev = cur;
    }
    let sink = b.node("sink", state.sample(&mut rng));
    for &v in &prev {
        b.edge(v, sink, 1, 1);
    }
    b.build().expect("butterfly is valid")
}

/// A random series-parallel dag built by recursive composition;
/// homogeneous rates. `size_budget` bounds the number of interior nodes.
pub fn series_parallel(size_budget: usize, state: StateDist, seed: u64) -> StreamGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let source = b.node("source", state.sample(&mut rng));
    let sink_state = state.sample(&mut rng);

    // Recursively expand between two endpoints.
    fn expand(
        b: &mut GraphBuilder,
        rng: &mut SmallRng,
        state: &StateDist,
        budget: &mut usize,
        from: NodeId,
    ) -> NodeId {
        if *budget == 0 {
            return from;
        }
        match rng.gen_range(0..3) {
            // Series: from -> x -> (recurse)
            0 => {
                *budget -= 1;
                let x = b.node(format!("sp{}", b.node_count()), state.sample(rng));
                b.edge(from, x, 1, 1);
                expand(b, rng, state, budget, x)
            }
            // Parallel: from branches into 2 sub-dags that re-join.
            1 if *budget >= 3 => {
                *budget -= 1;
                let joined = b.node(format!("sp{}", b.node_count()), state.sample(rng));
                for _ in 0..2 {
                    let end = expand(b, rng, state, budget, from);
                    if end == from {
                        // Degenerate branch: insert a pass-through node so
                        // the two parallel edges are distinguishable.
                        let x = b.node(format!("sp{}", b.node_count()), state.sample(rng));
                        *budget = budget.saturating_sub(1);
                        b.edge(from, x, 1, 1);
                        b.edge(x, joined, 1, 1);
                    } else {
                        b.edge(end, joined, 1, 1);
                    }
                }
                expand(b, rng, state, budget, joined)
            }
            _ => {
                *budget -= 1;
                let x = b.node(format!("sp{}", b.node_count()), state.sample(rng));
                b.edge(from, x, 1, 1);
                expand(b, rng, state, budget, x)
            }
        }
    }

    let mut budget = size_budget;
    let end = expand(&mut b, &mut rng, &state, &mut budget, source);
    let sink = b.node("sink", sink_state);
    b.edge(end, sink, 1, 1);
    b.build().expect("series-parallel is valid")
}

/// Rebuild `g` with a super-source feeding every original source and a
/// super-sink draining every original sink, preserving rate-matching.
/// The super endpoints have unit state.
pub fn add_super_endpoints(g: &StreamGraph) -> StreamGraph {
    let ra = RateAnalysis::analyze(g).expect("graph must be rate matched");
    let mut b = GraphBuilder::new();
    let ss = b.node("super-source", 1);
    let ids: Vec<NodeId> = g
        .node_ids()
        .map(|v| b.node(g.node(v).name.clone(), g.state(v)))
        .collect();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        b.edge(
            ids[edge.src.idx()],
            ids[edge.dst.idx()],
            edge.produce,
            edge.consume,
        );
    }
    // Super-source fires once per steady-state iteration; the edge to
    // original source s has produce = q(s), consume = 1, preserving
    // balance with q(super) = 1.
    for s in g.sources() {
        b.edge(ss, ids[s.idx()], ra.q(s), 1);
    }
    let st = b.node("super-sink", 1);
    for t in g.sinks() {
        b.edge(ids[t.idx()], st, 1, ra.q(t));
    }
    b.build().expect("super-endpoint graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pipeline_shape() {
        let g = pipeline_uniform(8, 100);
        assert!(g.is_pipeline());
        assert!(g.is_homogeneous());
        assert_eq!(g.total_state(), 800);
        RateAnalysis::analyze_single_io(&g).unwrap();
    }

    #[test]
    fn random_pipelines_rate_matched() {
        for seed in 0..20 {
            let g = pipeline(&PipelineCfg::default(), seed);
            assert!(g.is_pipeline());
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            assert!(ra.check_balance(&g));
        }
    }

    #[test]
    fn layered_dags_single_io_and_rate_matched() {
        for seed in 0..20 {
            let cfg = LayeredCfg {
                max_q: 3,
                ..LayeredCfg::default()
            };
            let g = layered(&cfg, seed);
            assert!(g.single_source().is_some(), "seed {seed}");
            assert!(g.single_sink().is_some(), "seed {seed}");
            let ra = RateAnalysis::analyze_single_io(&g).unwrap();
            assert!(ra.check_balance(&g));
        }
    }

    #[test]
    fn homogeneous_layered_is_homogeneous() {
        let cfg = LayeredCfg {
            max_q: 1,
            ..LayeredCfg::default()
        };
        for seed in 0..10 {
            let g = layered(&cfg, seed);
            assert!(g.is_homogeneous());
        }
    }

    #[test]
    fn split_join_shape() {
        let g = split_join(4, 3, StateDist::Fixed(10), 7);
        assert!(g.single_source().is_some());
        assert!(g.single_sink().is_some());
        assert!(g.is_homogeneous());
        // source, split, join, sink + 4*3 chain modules
        assert_eq!(g.node_count(), 4 + 12);
        RateAnalysis::analyze_single_io(&g).unwrap();
    }

    #[test]
    fn butterfly_shape() {
        let g = butterfly(3, StateDist::Fixed(8), 3);
        assert!(g.single_source().is_some());
        assert!(g.single_sink().is_some());
        // source + sink + width*(1 + log_width) interior
        assert_eq!(g.node_count(), 2 + 8 * 4);
        RateAnalysis::analyze_single_io(&g).unwrap();
    }

    #[test]
    fn series_parallel_valid() {
        for seed in 0..20 {
            let g = series_parallel(30, StateDist::Uniform(4, 64), seed);
            assert!(g.single_source().is_some(), "seed {seed}");
            assert!(g.single_sink().is_some(), "seed {seed}");
            RateAnalysis::analyze_single_io(&g).unwrap();
        }
    }

    #[test]
    fn super_endpoints_fix_multi_source() {
        let mut b = GraphBuilder::new();
        let s1 = b.node("s1", 4);
        let s2 = b.node("s2", 4);
        let t = b.node("t", 4);
        b.edge(s1, t, 2, 1);
        b.edge(s2, t, 1, 1);
        let g = b.build().unwrap();
        assert!(g.single_source().is_none());
        let g2 = add_super_endpoints(&g);
        assert!(g2.single_source().is_some());
        assert!(g2.single_sink().is_some());
        let ra = RateAnalysis::analyze_single_io(&g2).unwrap();
        assert!(ra.check_balance(&g2));
    }

    #[test]
    fn bimodal_state_dist_hits_both_modes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = StateDist::Bimodal {
            small: 2,
            large: 1000,
            p_large: 0.5,
        };
        let samples: Vec<u64> = (0..64).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.contains(&2));
        assert!(samples.contains(&1000));
    }
}
