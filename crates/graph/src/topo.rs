//! Topological utilities: sorting, precedence (`u ≺ v`), and reachability.

use crate::graph::{NodeId, StreamGraph};

/// A topological order of the graph's nodes (deterministic: smallest id
/// first among ready nodes).
pub fn topo_order(g: &StreamGraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = g.node_ids().map(|v| g.in_edges(v).len()).collect();
    // Min-heap on node id for determinism.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = g
        .node_ids()
        .filter(|v| indeg[v.idx()] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = heap.pop() {
        order.push(v);
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            indeg[w.idx()] -= 1;
            if indeg[w.idx()] == 0 {
                heap.push(std::cmp::Reverse(w));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "StreamGraph is guaranteed acyclic");
    order
}

/// Position of each node in a topological order: `rank[v] < rank[w]` for
/// every edge `v -> w`.
pub fn topo_rank(g: &StreamGraph) -> Vec<usize> {
    let order = topo_order(g);
    let mut rank = vec![0usize; g.node_count()];
    for (i, v) in order.iter().enumerate() {
        rank[v.idx()] = i;
    }
    rank
}

/// Dense reachability matrix stored as bitsets: `reach[u]` has bit `v` set
/// iff there is a directed path from `u` to `v` (including `u == v`).
///
/// O(V·E/64) time, O(V²/64) space — intended for the graph sizes the
/// partitioners handle (up to a few thousand nodes).
#[derive(Clone, Debug)]
pub struct Reachability {
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    pub fn compute(g: &StreamGraph) -> Reachability {
        let n = g.node_count();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        // Process in reverse topological order so successors are complete.
        let order = topo_order(g);
        for &v in order.iter().rev() {
            let vi = v.idx();
            bits[vi * words + vi / 64] |= 1u64 << (vi % 64);
            // Collect successor row indices first to appease the borrow
            // checker, then OR rows in.
            for k in 0..g.out_edges(v).len() {
                let w = g.edge(g.out_edges(v)[k]).dst.idx();
                let (dst_row, src_row) = (vi * words, w * words);
                for j in 0..words {
                    let src = bits[src_row + j];
                    bits[dst_row + j] |= src;
                }
            }
        }
        Reachability { words, bits }
    }

    /// True iff there is a directed path `u ⇝ v` (reflexive).
    #[inline]
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let (ui, vi) = (u.idx(), v.idx());
        self.bits[ui * self.words + vi / 64] >> (vi % 64) & 1 == 1
    }

    /// Strict precedence `u ≺ v`: a directed path exists and `u != v`.
    #[inline]
    pub fn precedes(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.reaches(u, v)
    }

    /// True if `u` and `v` are incomparable (neither precedes the other).
    pub fn incomparable(&self, u: NodeId, v: NodeId) -> bool {
        u != v && !self.reaches(u, v) && !self.reaches(v, u)
    }
}

/// True if every node lies on some source-to-sink path and the underlying
/// undirected graph is connected.
pub fn is_weakly_connected(g: &StreamGraph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return false;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId(0)];
    seen[0] = true;
    let mut count = 0usize;
    while let Some(v) = stack.pop() {
        count += 1;
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            if !seen[w.idx()] {
                seen[w.idx()] = true;
                stack.push(w);
            }
        }
        for &e in g.in_edges(v) {
            let w = g.edge(e).src;
            if !seen[w.idx()] {
                seen[w.idx()] = true;
                stack.push(w);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond() -> StreamGraph {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 1, 1);
        b.edge(s, c, 1, 1);
        b.edge(a, t, 1, 1);
        b.edge(c, t, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let rank = topo_rank(&g);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(rank[edge.src.idx()] < rank[edge.dst.idx()]);
        }
    }

    #[test]
    fn topo_order_deterministic() {
        let g = diamond();
        assert_eq!(topo_order(&g), topo_order(&g));
    }

    #[test]
    fn reachability_diamond() {
        let g = diamond();
        let r = Reachability::compute(&g);
        let (s, a, c, t) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        assert!(r.precedes(s, t));
        assert!(r.precedes(s, a));
        assert!(r.precedes(a, t));
        assert!(!r.precedes(a, c));
        assert!(!r.precedes(c, a));
        assert!(r.incomparable(a, c));
        assert!(!r.precedes(t, s));
        assert!(r.reaches(a, a));
        assert!(!r.incomparable(a, a));
    }

    #[test]
    fn reachability_long_chain_crosses_word_boundary() {
        // 130 nodes > 2 u64 words exercises multi-word bitset rows.
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..130).map(|i| b.node(format!("v{i}"), 1)).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1], 1, 1);
        }
        let g = b.build().unwrap();
        let r = Reachability::compute(&g);
        assert!(r.precedes(ids[0], ids[129]));
        assert!(r.precedes(ids[63], ids[64]));
        assert!(r.precedes(ids[0], ids[64]));
        assert!(!r.precedes(ids[129], ids[0]));
    }

    #[test]
    fn connectivity() {
        let g = diamond();
        assert!(is_weakly_connected(&g));
        let mut b = GraphBuilder::new();
        b.node("x", 1);
        b.node("y", 1);
        let g2 = b.build().unwrap();
        assert!(!is_weakly_connected(&g2));
    }
}
