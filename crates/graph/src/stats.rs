//! Structural statistics of streaming graphs.
//!
//! Used by the CLI's `analyze` command and by experiment tables to
//! characterize workloads: depth (critical path), width (largest
//! antichain layer), degree distribution, and state-distribution
//! summaries.

use crate::analysis::RateAnalysis;
use crate::graph::StreamGraph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a streaming graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub total_state: u64,
    pub max_state: u64,
    pub min_state: u64,
    pub mean_state: f64,
    /// Longest directed path, in nodes.
    pub depth: usize,
    /// Maximum number of nodes at the same depth level.
    pub width: usize,
    pub max_in_degree: usize,
    pub max_out_degree: usize,
    pub is_pipeline: bool,
    pub is_homogeneous: bool,
    /// Items crossing all edges per steady-state iteration.
    pub iteration_traffic: u64,
    /// Sum of the repetition vector (firings per iteration).
    pub iteration_firings: u64,
}

/// Compute [`GraphStats`]. `ra` must come from the same graph.
pub fn stats(g: &StreamGraph, ra: &RateAnalysis) -> GraphStats {
    let n = g.node_count();
    // Depth via longest-path DP over a topological order.
    let order = crate::topo::topo_order(g);
    let mut level = vec![0usize; n];
    for &v in &order {
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            level[w.idx()] = level[w.idx()].max(level[v.idx()] + 1);
        }
    }
    let depth = level.iter().copied().max().unwrap_or(0) + 1;
    let mut width_at = vec![0usize; depth];
    for v in g.node_ids() {
        width_at[level[v.idx()]] += 1;
    }
    let states: Vec<u64> = g.node_ids().map(|v| g.state(v)).collect();
    GraphStats {
        nodes: n,
        edges: g.edge_count(),
        total_state: g.total_state(),
        max_state: states.iter().copied().max().unwrap_or(0),
        min_state: states.iter().copied().min().unwrap_or(0),
        mean_state: g.total_state() as f64 / n.max(1) as f64,
        depth,
        width: width_at.into_iter().max().unwrap_or(0),
        max_in_degree: g.node_ids().map(|v| g.in_edges(v).len()).max().unwrap_or(0),
        max_out_degree: g
            .node_ids()
            .map(|v| g.out_edges(v).len())
            .max()
            .unwrap_or(0),
        is_pipeline: g.is_pipeline(),
        is_homogeneous: g.is_homogeneous(),
        iteration_traffic: g.edge_ids().map(|e| ra.edge_traffic(g, e)).sum(),
        iteration_firings: ra.repetitions.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::GraphBuilder;

    #[test]
    fn pipeline_stats() {
        let g = gen::pipeline_uniform(8, 32);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let s = stats(&g, &ra);
        assert_eq!(s.nodes, 8);
        assert_eq!(s.edges, 7);
        assert_eq!(s.depth, 8);
        assert_eq!(s.width, 1);
        assert!(s.is_pipeline);
        assert!(s.is_homogeneous);
        assert_eq!(s.total_state, 256);
        assert_eq!(s.mean_state, 32.0);
        assert_eq!(s.iteration_traffic, 7);
        assert_eq!(s.iteration_firings, 8);
    }

    #[test]
    fn diamond_depth_and_width() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 2);
        let c = b.node("c", 3);
        let t = b.node("t", 4);
        b.edge(s, a, 1, 1);
        b.edge(s, c, 1, 1);
        b.edge(a, t, 1, 1);
        b.edge(c, t, 1, 1);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let st = stats(&g, &ra);
        assert_eq!(st.depth, 3);
        assert_eq!(st.width, 2);
        assert_eq!(st.max_out_degree, 2);
        assert_eq!(st.max_in_degree, 2);
        assert_eq!(st.min_state, 1);
        assert_eq!(st.max_state, 4);
        assert!(!st.is_pipeline);
    }

    #[test]
    fn rated_traffic_counts_per_iteration() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let t = b.node("t", 1);
        b.edge(s, t, 3, 2); // q = (2, 3): traffic 6 per iteration
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let st = stats(&g, &ra);
        assert_eq!(st.iteration_traffic, 6);
        assert_eq!(st.iteration_firings, 5);
        assert!(!st.is_homogeneous);
    }

    #[test]
    fn serde_roundtrip() {
        let g = gen::pipeline_uniform(4, 8);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let st = stats(&g, &ra);
        let json = serde_json::to_string(&st).unwrap();
        let back: GraphStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, st);
    }
}
