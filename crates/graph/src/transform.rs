//! Graph transformations that preserve validity and rate-matching.
//!
//! Used by experiments to vary one workload dimension at a time, and by
//! tests as a source of equivalence checks (each transform states the
//! invariant it preserves).

use crate::graph::{GraphBuilder, NodeId, StreamGraph};

/// Multiply every edge's `produce` and `consume` by `k`.
///
/// Invariants preserved: the repetition vector (rate *ratios* are
/// unchanged) and hence all gains; acyclicity; the paper's rate-matching.
/// What changes: per-firing batch sizes and `minBuf` (both scale by `k`).
pub fn scale_rates(g: &StreamGraph, k: u64) -> StreamGraph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = g
        .node_ids()
        .map(|v| b.node(g.node(v).name.clone(), g.state(v)))
        .collect();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        b.edge(
            ids[edge.src.idx()],
            ids[edge.dst.idx()],
            edge.produce * k,
            edge.consume * k,
        );
    }
    b.build().expect("rate scaling preserves validity")
}

/// Multiply every module's state by `k` (topology untouched).
pub fn scale_state(g: &StreamGraph, k: u64) -> StreamGraph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = g
        .node_ids()
        .map(|v| b.node(g.node(v).name.clone(), g.state(v) * k))
        .collect();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        b.edge(
            ids[edge.src.idx()],
            ids[edge.dst.idx()],
            edge.produce,
            edge.consume,
        );
    }
    b.build().expect("state scaling preserves validity")
}

/// The edge-reversed graph: every channel `u -(p:c)-> v` becomes
/// `v -(c:p)-> u`. Sources and sinks swap; the repetition vector is
/// unchanged (balance equations are symmetric under this swap).
pub fn reverse(g: &StreamGraph) -> StreamGraph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = g
        .node_ids()
        .map(|v| b.node(g.node(v).name.clone(), g.state(v)))
        .collect();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        b.edge(
            ids[edge.dst.idx()],
            ids[edge.src.idx()],
            edge.consume,
            edge.produce,
        );
    }
    b.build().expect("reversal of a dag is a dag")
}

/// The subgraph induced by `nodes` (which must be non-empty). Node ids
/// are renumbered densely in the order given; returns the new graph and
/// the old→new id mapping for the retained nodes.
pub fn induced_subgraph(g: &StreamGraph, nodes: &[NodeId]) -> (StreamGraph, Vec<Option<NodeId>>) {
    assert!(!nodes.is_empty());
    let mut map: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut b = GraphBuilder::new();
    for &v in nodes {
        assert!(map[v.idx()].is_none(), "duplicate node {v:?}");
        map[v.idx()] = Some(b.node(g.node(v).name.clone(), g.state(v)));
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        if let (Some(u), Some(v)) = (map[edge.src.idx()], map[edge.dst.idx()]) {
            b.edge(u, v, edge.produce, edge.consume);
        }
    }
    (b.build().expect("induced subgraph of a dag is a dag"), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::RateAnalysis;
    use crate::gen::{self, PipelineCfg};

    #[test]
    fn scale_rates_preserves_repetitions() {
        let g = gen::pipeline(&PipelineCfg::default(), 5);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        for k in [2u64, 3, 8] {
            let g2 = scale_rates(&g, k);
            let ra2 = RateAnalysis::analyze_single_io(&g2).unwrap();
            assert_eq!(ra.repetitions, ra2.repetitions, "k={k}");
            // Traffic scales by k.
            for e in g.edge_ids() {
                assert_eq!(ra2.edge_traffic(&g2, e), k * ra.edge_traffic(&g, e));
            }
        }
    }

    #[test]
    fn scale_state_changes_only_state() {
        let g = gen::pipeline_uniform(6, 10);
        let g2 = scale_state(&g, 7);
        assert_eq!(g2.total_state(), 7 * g.total_state());
        assert_eq!(g2.edge_count(), g.edge_count());
        let ra2 = RateAnalysis::analyze_single_io(&g2).unwrap();
        assert!(ra2.repetitions.iter().all(|&q| q == 1));
    }

    #[test]
    fn reverse_swaps_endpoints_and_keeps_repetitions() {
        let g = gen::pipeline(&PipelineCfg::default(), 11);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        let r = reverse(&g);
        let rra = RateAnalysis::analyze_single_io(&r).unwrap();
        assert_eq!(ra.repetitions, rra.repetitions);
        assert_eq!(ra.source, rra.sink);
        assert_eq!(ra.sink, rra.source);
        // Double reversal is the identity on shape.
        let rr = reverse(&r);
        assert_eq!(rr.edge_count(), g.edge_count());
        for e in g.edge_ids() {
            assert_eq!(rr.edge(e).produce, g.edge(e).produce);
            assert_eq!(rr.edge(e).consume, g.edge(e).consume);
        }
    }

    #[test]
    fn induced_subgraph_of_chain_prefix() {
        let g = gen::pipeline_uniform(8, 4);
        let order = g.pipeline_order().unwrap();
        let (sub, map) = induced_subgraph(&g, &order[..3]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.is_pipeline());
        assert!(map[order[0].idx()].is_some());
        assert!(map[order[7].idx()].is_none());
    }

    #[test]
    fn induced_subgraph_drops_cross_edges() {
        let g = gen::split_join(2, 1, crate::gen::StateDist::Fixed(4), 0);
        // Keep only source and sink: no edges survive.
        let src = g.single_source().unwrap();
        let sink = g.single_sink().unwrap();
        let (sub, _) = induced_subgraph(&g, &[src, sink]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 0);
    }
}
