//! The streaming-graph representation.
//!
//! A [`StreamGraph`] is a directed acyclic multigraph whose vertices are
//! computation *modules* (with a fixed state size, in words) and whose
//! edges are FIFO *channels* annotated with production and consumption
//! rates, exactly as in §2 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a module (vertex) in a [`StreamGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a channel (edge) in a [`StreamGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Index into node-indexed vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Index into edge-indexed vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A computation module: `state` is the number of words that must reside in
/// cache for the module to fire (`s(v)` in the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    pub name: String,
    pub state: u64,
}

/// A channel between two modules.
///
/// `produce` is `out(src, dst)`: items appended to the channel each time
/// `src` fires. `consume` is `in(src, dst)`: items removed each time `dst`
/// fires. Both are at least 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub produce: u64,
    pub consume: u64,
}

/// Errors detected while building a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// An edge references a node id that does not exist.
    DanglingEdge { edge: usize },
    /// A rate was zero (`produce` and `consume` must be >= 1).
    ZeroRate { edge: usize },
    /// A self-loop was requested; streaming dags are acyclic.
    SelfLoop { node: NodeId },
    /// The directed graph contains a cycle (offending node reported).
    Cycle { node: NodeId },
    /// More nodes/edges than the `u32` id space.
    TooLarge,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::DanglingEdge { edge } => {
                write!(f, "edge {edge} references a nonexistent node")
            }
            GraphError::ZeroRate { edge } => {
                write!(f, "edge {edge} has a zero production/consumption rate")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self loop on node {node:?}")
            }
            GraphError::Cycle { node } => {
                write!(f, "graph contains a cycle through {node:?}")
            }
            GraphError::TooLarge => write!(f, "graph exceeds u32 id space"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A synchronous-dataflow streaming dag.
///
/// Construct with [`GraphBuilder`]; construction validates acyclicity and
/// rate positivity, so every `StreamGraph` in existence is a structurally
/// valid streaming dag (rate-matching is checked separately by
/// [`crate::analysis::RateAnalysis`], since it is a property of the rates,
/// not the shape).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node, in insertion order.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node, in insertion order.
    in_edges: Vec<Vec<EdgeId>>,
}

impl StreamGraph {
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn node(&self, v: NodeId) -> &Node {
        &self.nodes[v.idx()]
    }

    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.idx()]
    }

    /// State size `s(v)` in words.
    #[inline]
    pub fn state(&self, v: NodeId) -> u64 {
        self.nodes[v.idx()].state
    }

    /// Total state of all modules, in words.
    pub fn total_state(&self) -> u64 {
        self.nodes.iter().map(|n| n.state).sum()
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edges[v.idx()]
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edges[v.idx()]
    }

    /// Total degree (in + out) of `v`, counting multi-edges.
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_edges[v.idx()].len() + self.in_edges[v.idx()].len()
    }

    /// Nodes with no incoming edges.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|v| self.in_edges(*v).is_empty())
            .collect()
    }

    /// Nodes with no outgoing edges.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|v| self.out_edges(*v).is_empty())
            .collect()
    }

    /// The unique source, if there is exactly one.
    pub fn single_source(&self) -> Option<NodeId> {
        let s = self.sources();
        if s.len() == 1 {
            Some(s[0])
        } else {
            None
        }
    }

    /// The unique sink, if there is exactly one.
    pub fn single_sink(&self) -> Option<NodeId> {
        let s = self.sinks();
        if s.len() == 1 {
            Some(s[0])
        } else {
            None
        }
    }

    /// True if every module consumes and produces exactly one item on every
    /// incident channel ("homogeneous" in the paper).
    pub fn is_homogeneous(&self) -> bool {
        self.edges.iter().all(|e| e.produce == 1 && e.consume == 1)
    }

    /// True if the graph is a single directed chain `v0 -> v1 -> ... -> vn`.
    pub fn is_pipeline(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut starts = 0usize;
        for v in self.node_ids() {
            let (ins, outs) = (self.in_edges(v).len(), self.out_edges(v).len());
            if ins > 1 || outs > 1 {
                return false;
            }
            if ins == 0 {
                starts += 1;
            }
        }
        // Acyclicity is guaranteed by construction, so in/out degree <= 1
        // plus a single start node implies a single chain.
        starts == 1 && self.edge_count() == self.node_count() - 1
    }

    /// The nodes of a pipeline in chain order. `None` if not a pipeline.
    pub fn pipeline_order(&self) -> Option<Vec<NodeId>> {
        if !self.is_pipeline() {
            return None;
        }
        let mut order = Vec::with_capacity(self.node_count());
        let mut cur = self.single_source()?;
        order.push(cur);
        while let Some(&e) = self.out_edges(cur).first() {
            cur = self.edge(e).dst;
            order.push(cur);
        }
        debug_assert_eq!(order.len(), self.node_count());
        Some(order)
    }

    /// Sum of state over a set of nodes.
    pub fn state_of(&self, nodes: &[NodeId]) -> u64 {
        nodes.iter().map(|v| self.state(*v)).sum()
    }

    /// Largest single-module state in the graph.
    pub fn max_state(&self) -> u64 {
        self.nodes.iter().map(|n| n.state).max().unwrap_or(0)
    }
}

/// Incremental builder for [`StreamGraph`].
///
/// ```
/// use ccs_graph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new();
/// let s = b.node("source", 16);
/// let f = b.node("filter", 64);
/// let t = b.node("sink", 16);
/// b.edge(s, f, 1, 1);
/// b.edge(f, t, 1, 1);
/// let g = b.build().unwrap();
/// assert!(g.is_pipeline());
/// assert_eq!(g.total_state(), 96);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a module with the given display name and state size (words).
    pub fn node(&mut self, name: impl Into<String>, state: u64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.into(),
            state,
        });
        id
    }

    /// Add a channel `src -> dst` producing `produce` items per firing of
    /// `src` and consuming `consume` items per firing of `dst`.
    pub fn edge(&mut self, src: NodeId, dst: NodeId, produce: u64, consume: u64) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            src,
            dst,
            produce,
            consume,
        });
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validate and freeze into a [`StreamGraph`].
    pub fn build(self) -> Result<StreamGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        if self.nodes.len() > u32::MAX as usize || self.edges.len() > u32::MAX as usize {
            return Err(GraphError::TooLarge);
        }
        let n = self.nodes.len();
        for (i, e) in self.edges.iter().enumerate() {
            if e.src.idx() >= n || e.dst.idx() >= n {
                return Err(GraphError::DanglingEdge { edge: i });
            }
            if e.produce == 0 || e.consume == 0 {
                return Err(GraphError::ZeroRate { edge: i });
            }
            if e.src == e.dst {
                return Err(GraphError::SelfLoop { node: e.src });
            }
        }
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            out_edges[e.src.idx()].push(EdgeId(i as u32));
            in_edges[e.dst.idx()].push(EdgeId(i as u32));
        }
        let g = StreamGraph {
            nodes: self.nodes,
            edges: self.edges,
            out_edges,
            in_edges,
        };
        // Kahn's algorithm to reject cycles.
        let mut indeg: Vec<usize> = g.node_ids().map(|v| g.in_edges(v).len()).collect();
        let mut queue: Vec<NodeId> = g.node_ids().filter(|v| indeg[v.idx()] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &e in g.out_edges(v) {
                let w = g.edge(e).dst;
                indeg[w.idx()] -= 1;
                if indeg[w.idx()] == 0 {
                    queue.push(w);
                }
            }
        }
        if seen != n {
            let node = g
                .node_ids()
                .find(|v| indeg[v.idx()] > 0)
                .expect("cycle must leave positive in-degree");
            return Err(GraphError::Cycle { node });
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> StreamGraph {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 10);
        let a = b.node("a", 20);
        let c = b.node("c", 30);
        let t = b.node("t", 40);
        b.edge(s, a, 1, 1);
        b.edge(s, c, 1, 1);
        b.edge(a, t, 1, 1);
        b.edge(c, t, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.total_state(), 100);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert!(g.is_homogeneous());
        assert!(!g.is_pipeline());
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(3)), 2);
        assert_eq!(g.max_state(), 40);
    }

    #[test]
    fn rejects_cycle() {
        let mut b = GraphBuilder::new();
        let a = b.node("a", 1);
        let c = b.node("b", 1);
        b.edge(a, c, 1, 1);
        b.edge(c, a, 1, 1);
        assert!(matches!(b.build(), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.node("a", 1);
        b.edge(a, a, 1, 1);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn rejects_zero_rate() {
        let mut b = GraphBuilder::new();
        let a = b.node("a", 1);
        let c = b.node("b", 1);
        b.edge(a, c, 0, 1);
        assert!(matches!(b.build(), Err(GraphError::ZeroRate { edge: 0 })));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            GraphBuilder::new().build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn pipeline_detection_and_order() {
        let mut b = GraphBuilder::new();
        let v0 = b.node("v0", 1);
        let v1 = b.node("v1", 1);
        let v2 = b.node("v2", 1);
        b.edge(v0, v1, 2, 3);
        b.edge(v1, v2, 5, 1);
        let g = b.build().unwrap();
        assert!(g.is_pipeline());
        assert!(!g.is_homogeneous());
        assert_eq!(
            g.pipeline_order().unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn single_node_is_pipeline() {
        let mut b = GraphBuilder::new();
        b.node("only", 5);
        let g = b.build().unwrap();
        assert!(g.is_pipeline());
        assert_eq!(g.pipeline_order().unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn multigraph_edges_allowed() {
        let mut b = GraphBuilder::new();
        let a = b.node("a", 1);
        let c = b.node("b", 1);
        b.edge(a, c, 1, 1);
        b.edge(a, c, 2, 2);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_edges(a).len(), 2);
        assert!(!g.is_pipeline());
    }

    #[test]
    fn serde_roundtrip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let g2: StreamGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.total_state(), g.total_state());
    }
}
