//! Minimum channel-buffer sizes (`minBuf(e)` in §2).
//!
//! For a single SDF edge with rates `p = out(e)` and `c = in(e)`, the
//! smallest buffer capacity that admits a deadlock-free periodic schedule
//! is the classical bound `p + c - gcd(p, c)`. The paper instead works
//! with the (slightly larger, schedule-oblivious) `p + c`, under which a
//! producer can always run until the consumer is fireable regardless of
//! phase. We expose both:
//!
//! * [`min_buf_lower`] — `p + c - gcd(p, c)`, the tight bound;
//! * [`min_buf_safe`]  — `p + c`, what the paper's schedulers allocate.
//!
//! Both satisfy the paper's standing assumption that internal buffers are
//! dominated by module state for pipelines and homogeneous dags.

use crate::graph::{EdgeId, NodeId, StreamGraph};
use crate::ratio::gcd_u64;

/// Tight minimum buffer for edge `e`: `p + c - gcd(p, c)`.
pub fn min_buf_lower(g: &StreamGraph, e: EdgeId) -> u64 {
    let edge = g.edge(e);
    edge.produce + edge.consume - gcd_u64(edge.produce, edge.consume)
}

/// Safe minimum buffer for edge `e`: `p + c` (the paper's choice).
pub fn min_buf_safe(g: &StreamGraph, e: EdgeId) -> u64 {
    let edge = g.edge(e);
    edge.produce + edge.consume
}

/// Sum of safe internal buffer sizes over the edges induced by `nodes`
/// (both endpoints inside the set). This is the quantity the paper
/// requires to be `O(Σ s(v))` for components of a partition.
pub fn internal_buffer_total(g: &StreamGraph, nodes: &[NodeId]) -> u64 {
    let mut inside = vec![false; g.node_count()];
    for v in nodes {
        inside[v.idx()] = true;
    }
    g.edge_ids()
        .filter(|&e| {
            let edge = g.edge(e);
            inside[edge.src.idx()] && inside[edge.dst.idx()]
        })
        .map(|e| min_buf_safe(g, e))
        .sum()
}

/// Empirically verifies that a two-node producer/consumer system with the
/// given buffer capacity can complete one steady-state iteration without
/// deadlock. Used to validate the closed-form bounds in tests.
///
/// Simulates the demand-driven rule: fire the consumer whenever possible,
/// otherwise fire the producer if the buffer has room for its output.
pub fn edge_schedulable_with_capacity(produce: u64, consume: u64, capacity: u64) -> bool {
    assert!(produce > 0 && consume > 0);
    let g = gcd_u64(produce, consume);
    // One steady-state iteration: producer fires consume/g times,
    // consumer fires produce/g times.
    let (mut need_p, mut need_c) = (consume / g, produce / g);
    let mut occupancy: u64 = 0;
    while need_p > 0 || need_c > 0 {
        if need_c > 0 && occupancy >= consume {
            occupancy -= consume;
            need_c -= 1;
        } else if need_p > 0 && occupancy + produce <= capacity {
            occupancy += produce;
            need_p -= 1;
        } else {
            return false; // deadlock
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn edge_graph(p: u64, c: u64) -> StreamGraph {
        let mut b = GraphBuilder::new();
        let a = b.node("a", 1);
        let z = b.node("b", 1);
        b.edge(a, z, p, c);
        b.build().unwrap()
    }

    #[test]
    fn homogeneous_edge_needs_one_slot() {
        let g = edge_graph(1, 1);
        assert_eq!(min_buf_lower(&g, crate::EdgeId(0)), 1);
        assert_eq!(min_buf_safe(&g, crate::EdgeId(0)), 2);
        assert!(edge_schedulable_with_capacity(1, 1, 1));
        assert!(!edge_schedulable_with_capacity(1, 1, 0));
    }

    #[test]
    fn classic_rates() {
        let g = edge_graph(3, 2);
        // 3 + 2 - gcd(3,2)=1 -> 4
        assert_eq!(min_buf_lower(&g, crate::EdgeId(0)), 4);
        assert_eq!(min_buf_safe(&g, crate::EdgeId(0)), 5);
        assert!(edge_schedulable_with_capacity(3, 2, 4));
        assert!(!edge_schedulable_with_capacity(3, 2, 3));
    }

    #[test]
    fn lower_bound_is_tight_exhaustively() {
        // For all small rate pairs, the closed form matches simulation.
        for p in 1..=12u64 {
            for c in 1..=12u64 {
                let tight = p + c - gcd_u64(p, c);
                assert!(
                    edge_schedulable_with_capacity(p, c, tight),
                    "p={p} c={c} cap={tight} should schedule"
                );
                assert!(
                    !edge_schedulable_with_capacity(p, c, tight - 1),
                    "p={p} c={c} cap={} should deadlock",
                    tight - 1
                );
            }
        }
    }

    #[test]
    fn internal_totals_count_only_induced_edges() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 2, 1);
        b.edge(a, t, 1, 3);
        let g = b.build().unwrap();
        use crate::NodeId;
        assert_eq!(internal_buffer_total(&g, &[NodeId(0), NodeId(1)]), 3);
        assert_eq!(internal_buffer_total(&g, &[NodeId(1), NodeId(2)]), 4);
        assert_eq!(internal_buffer_total(&g, &[NodeId(0), NodeId(2)]), 0);
        assert_eq!(
            internal_buffer_total(&g, &[NodeId(0), NodeId(1), NodeId(2)]),
            7
        );
    }
}
