//! Rate analysis: rate-matching validation, repetition vectors, and gains.
//!
//! A streaming dag is *rate matched* (§2) when the product of
//! `out(u,v)/in(u,v)` along every directed path between a fixed pair of
//! vertices is the same. This is exactly the classical SDF *consistency*
//! condition of Lee and Messerschmitt: the balance equations
//! `q(u)·out(u,v) = q(v)·in(u,v)` admit a positive integer solution `q`,
//! the *repetition vector*. The paper's *gain* (Definition 1) is then
//! `gain(v) = q(v) / q(s)` for the unique source `s`.

use crate::graph::{EdgeId, NodeId, StreamGraph};
use crate::ratio::{checked_lcm_i128, gcd_i128, Ratio};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by rate analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RateError {
    /// Two directed paths between the same pair of nodes have different
    /// rate products; the offending edge is reported.
    NotRateMatched { edge: EdgeId },
    /// The graph is not weakly connected; gains are ill-defined across
    /// components.
    Disconnected,
    /// Rates produced values exceeding exact i128 arithmetic.
    Overflow,
    /// Gain analysis needs a unique source node; `sources` found.
    MultipleSources { sources: usize },
    /// Gain analysis needs a unique sink node; `sinks` found.
    MultipleSinks { sinks: usize },
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateError::NotRateMatched { edge } => {
                write!(f, "graph is not rate matched (edge {edge:?} inconsistent)")
            }
            RateError::Disconnected => write!(f, "graph is not weakly connected"),
            RateError::Overflow => write!(f, "rate arithmetic overflowed i128"),
            RateError::MultipleSources { sources } => {
                write!(f, "expected a unique source, found {sources}")
            }
            RateError::MultipleSinks { sinks } => {
                write!(f, "expected a unique sink, found {sinks}")
            }
        }
    }
}

impl std::error::Error for RateError {}

/// The result of rate analysis over a rate-matched streaming dag.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateAnalysis {
    /// Minimal positive integer repetition vector `q`: one steady-state
    /// iteration fires node `v` exactly `q[v]` times and returns every
    /// channel to its initial occupancy.
    pub repetitions: Vec<u64>,
    /// The unique source node (no incoming edges), if unique.
    pub source: Option<NodeId>,
    /// The unique sink node (no outgoing edges), if unique.
    pub sink: Option<NodeId>,
}

impl RateAnalysis {
    /// Analyze `g`. Fails if `g` is disconnected or not rate matched.
    pub fn analyze(g: &StreamGraph) -> Result<RateAnalysis, RateError> {
        let n = g.node_count();
        if !crate::topo::is_weakly_connected(g) {
            return Err(RateError::Disconnected);
        }
        // BFS over the undirected structure assigning rational firing
        // ratios r(v) relative to node 0, then verify every edge.
        let mut ratio: Vec<Option<Ratio>> = vec![None; n];
        ratio[0] = Some(Ratio::ONE);
        let mut queue = std::collections::VecDeque::from([NodeId(0)]);
        while let Some(v) = queue.pop_front() {
            let rv = ratio[v.idx()].expect("queued nodes have ratios");
            for &e in g.out_edges(v) {
                let edge = g.edge(e);
                // r(dst) = r(v) * produce / consume
                let rw = rv
                    .checked_mul(Ratio::new(edge.produce as i128, edge.consume as i128))
                    .ok_or(RateError::Overflow)?;
                match ratio[edge.dst.idx()] {
                    None => {
                        ratio[edge.dst.idx()] = Some(rw);
                        queue.push_back(edge.dst);
                    }
                    Some(prev) if prev != rw => return Err(RateError::NotRateMatched { edge: e }),
                    Some(_) => {}
                }
            }
            for &e in g.in_edges(v) {
                let edge = g.edge(e);
                // r(src) = r(v) * consume / produce
                let ru = rv
                    .checked_mul(Ratio::new(edge.consume as i128, edge.produce as i128))
                    .ok_or(RateError::Overflow)?;
                match ratio[edge.src.idx()] {
                    None => {
                        ratio[edge.src.idx()] = Some(ru);
                        queue.push_back(edge.src);
                    }
                    Some(prev) if prev != ru => return Err(RateError::NotRateMatched { edge: e }),
                    Some(_) => {}
                }
            }
        }
        let ratios: Vec<Ratio> = ratio
            .into_iter()
            .map(|r| r.expect("connected graph visits every node"))
            .collect();
        // Scale to the minimal integer vector: multiply by the lcm of
        // denominators, then divide by the gcd of numerators.
        let mut l: i128 = 1;
        for r in &ratios {
            l = checked_lcm_i128(l, r.den()).ok_or(RateError::Overflow)?;
        }
        let mut scaled: Vec<i128> = Vec::with_capacity(n);
        for r in &ratios {
            let v = r
                .num()
                .checked_mul(l / r.den())
                .ok_or(RateError::Overflow)?;
            debug_assert!(v > 0, "rates are positive");
            scaled.push(v);
        }
        let mut g_all: i128 = 0;
        for &v in &scaled {
            g_all = gcd_i128(g_all, v);
        }
        let repetitions: Vec<u64> = scaled
            .iter()
            .map(|&v| u64::try_from(v / g_all).map_err(|_| RateError::Overflow))
            .collect::<Result<_, _>>()?;
        Ok(RateAnalysis {
            repetitions,
            source: g.single_source(),
            sink: g.single_sink(),
        })
    }

    /// Like [`analyze`](Self::analyze), but additionally requires a unique
    /// source and unique sink (the paper's standing assumption).
    pub fn analyze_single_io(g: &StreamGraph) -> Result<RateAnalysis, RateError> {
        let a = Self::analyze(g)?;
        if a.source.is_none() {
            return Err(RateError::MultipleSources {
                sources: g.sources().len(),
            });
        }
        if a.sink.is_none() {
            return Err(RateError::MultipleSinks {
                sinks: g.sinks().len(),
            });
        }
        Ok(a)
    }

    /// `q(v)`: firings of `v` per steady-state iteration.
    #[inline]
    pub fn q(&self, v: NodeId) -> u64 {
        self.repetitions[v.idx()]
    }

    /// `gain(v) = q(v)/q(s)` — firings of `v` per firing of the unique
    /// source `s` (Definition 1). Panics if the graph has no unique source;
    /// use [`gain_from`](Self::gain_from) for multi-source graphs.
    pub fn gain(&self, v: NodeId) -> Ratio {
        let s = self.source.expect("gain requires a unique source");
        self.gain_from(s, v)
    }

    /// Firings of `v` per firing of `base`.
    pub fn gain_from(&self, base: NodeId, v: NodeId) -> Ratio {
        Ratio::new(
            self.repetitions[v.idx()] as i128,
            self.repetitions[base.idx()] as i128,
        )
    }

    /// `gain(u,v) = gain(u) · out(u,v)` — messages crossing edge `e` per
    /// source firing (Definition 1).
    pub fn edge_gain(&self, g: &StreamGraph, e: EdgeId) -> Ratio {
        let edge = g.edge(e);
        self.gain(edge.src) * Ratio::integer(edge.produce as i128)
    }

    /// Messages crossing edge `e` per steady-state iteration:
    /// `q(src)·produce` (an exact integer; equals `q(dst)·consume`).
    pub fn edge_traffic(&self, g: &StreamGraph, e: EdgeId) -> u64 {
        let edge = g.edge(e);
        self.repetitions[edge.src.idx()] * edge.produce
    }

    /// Total items the source consumes... produces per steady-state
    /// iteration along all its outgoing edges.
    pub fn iteration_inputs(&self, g: &StreamGraph) -> u64 {
        match self.source {
            Some(s) => g
                .out_edges(s)
                .iter()
                .map(|&e| self.edge_traffic(g, e))
                .sum(),
            None => 0,
        }
    }

    /// Verifies the balance equation `q(u)·produce == q(v)·consume` on
    /// every edge — true for every successfully analyzed graph; exposed
    /// for tests.
    pub fn check_balance(&self, g: &StreamGraph) -> bool {
        g.edge_ids().all(|e| {
            let edge = g.edge(e);
            self.repetitions[edge.src.idx()] as u128 * edge.produce as u128
                == self.repetitions[edge.dst.idx()] as u128 * edge.consume as u128
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn homogeneous_repetitions_all_one() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 1, 1);
        b.edge(a, t, 1, 1);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        assert_eq!(ra.repetitions, vec![1, 1, 1]);
        assert_eq!(ra.gain(NodeId(2)), Ratio::ONE);
        assert!(ra.check_balance(&g));
    }

    #[test]
    fn classic_sdf_example() {
        // Lee-Messerschmitt style: s -(2:3)-> a -(1:2)-> t
        // Balance: q(s)*2 = q(a)*3, q(a)*1 = q(t)*2 => q = (3, 2, 1).
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 2, 3);
        b.edge(a, t, 1, 2);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze(&g).unwrap();
        assert_eq!(ra.repetitions, vec![3, 2, 1]);
        assert_eq!(ra.gain(NodeId(1)), Ratio::new(2, 3));
        assert_eq!(ra.gain(NodeId(2)), Ratio::new(1, 3));
        // edge gains: gain(s)*2 = 2, gain(a)*1 = 2/3
        assert_eq!(ra.edge_gain(&g, EdgeId(0)), Ratio::integer(2));
        assert_eq!(ra.edge_gain(&g, EdgeId(1)), Ratio::new(2, 3));
        // per-iteration traffic
        assert_eq!(ra.edge_traffic(&g, EdgeId(0)), 6);
        assert_eq!(ra.edge_traffic(&g, EdgeId(1)), 2);
        assert_eq!(ra.iteration_inputs(&g), 6);
    }

    #[test]
    fn detects_rate_mismatch_on_diamond() {
        // Two paths s->t with different products: (1:1 then 1:1) vs (2:1 then 1:1).
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 1, 1);
        b.edge(s, c, 2, 1);
        b.edge(a, t, 1, 1);
        b.edge(c, t, 1, 1);
        let g = b.build().unwrap();
        assert!(matches!(
            RateAnalysis::analyze(&g),
            Err(RateError::NotRateMatched { .. })
        ));
    }

    #[test]
    fn rate_matched_diamond_with_rates() {
        // s splits 2 ways with amplification 2 on each branch, rejoined.
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let t = b.node("t", 1);
        b.edge(s, a, 2, 1); // a fires 2x per s
        b.edge(s, c, 4, 2); // c fires 2x per s
        b.edge(a, t, 1, 2); // t fires 1x per s
        b.edge(c, t, 3, 6);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        assert_eq!(ra.repetitions, vec![1, 2, 2, 1]);
        assert!(ra.check_balance(&g));
        assert_eq!(ra.gain(NodeId(1)), Ratio::integer(2));
        assert_eq!(ra.gain(NodeId(3)), Ratio::ONE);
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.node("a", 1);
        let c = b.node("b", 1);
        let d = b.node("c", 1);
        b.edge(a, c, 1, 1);
        let _ = d;
        let g = b.build().unwrap();
        assert_eq!(RateAnalysis::analyze(&g), Err(RateError::Disconnected));
    }

    #[test]
    fn multi_source_flagged_only_by_single_io() {
        let mut b = GraphBuilder::new();
        let s1 = b.node("s1", 1);
        let s2 = b.node("s2", 1);
        let t = b.node("t", 1);
        b.edge(s1, t, 1, 1);
        b.edge(s2, t, 1, 1);
        let g = b.build().unwrap();
        assert!(RateAnalysis::analyze(&g).is_ok());
        assert!(matches!(
            RateAnalysis::analyze_single_io(&g),
            Err(RateError::MultipleSources { sources: 2 })
        ));
    }

    #[test]
    fn gain_from_arbitrary_base() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        b.edge(s, a, 3, 1);
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze(&g).unwrap();
        assert_eq!(ra.gain_from(NodeId(1), NodeId(0)), Ratio::new(1, 3));
    }

    #[test]
    fn repetition_vector_is_minimal() {
        let mut b = GraphBuilder::new();
        let s = b.node("s", 1);
        let a = b.node("a", 1);
        b.edge(s, a, 4, 6); // balance 4q(s)=6q(a) -> minimal (3, 2)
        let g = b.build().unwrap();
        let ra = RateAnalysis::analyze(&g).unwrap();
        assert_eq!(ra.repetitions, vec![3, 2]);
    }
}
