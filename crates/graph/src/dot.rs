//! Graphviz DOT export for inspection and debugging.

use crate::graph::StreamGraph;
use std::fmt::Write as _;

/// Render `g` as a DOT digraph. Node labels carry state sizes; edge labels
/// carry `produce:consume` rates.
pub fn to_dot(g: &StreamGraph) -> String {
    let mut s = String::new();
    s.push_str("digraph stream {\n  rankdir=LR;\n  node [shape=box];\n");
    for v in g.node_ids() {
        let n = g.node(v);
        let _ = writeln!(s, "  n{} [label=\"{}\\ns={}\"];", v.0, n.name, n.state);
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let _ = writeln!(
            s,
            "  n{} -> n{} [label=\"{}:{}\"];",
            edge.src.0, edge.dst.0, edge.produce, edge.consume
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.node("alpha", 7);
        let z = b.node("omega", 9);
        b.edge(a, z, 2, 3);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("alpha"));
        assert!(dot.contains("omega"));
        assert!(dot.contains("s=7"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("2:3"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
