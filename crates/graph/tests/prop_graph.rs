//! Property-based tests for the SDF graph substrate.

use ccs_graph::analysis::RateAnalysis;
use ccs_graph::buffers;
use ccs_graph::gen::{self, LayeredCfg, PipelineCfg, StateDist};
use ccs_graph::ratio::{gcd_u64, Ratio};
use ccs_graph::topo;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated pipeline is rate matched, and its repetition vector
    /// satisfies the balance equations with a gcd of one (minimality).
    #[test]
    fn pipelines_are_rate_matched(seed in 0u64..10_000, len in 2usize..40,
                                  max_q in 1u64..8, scale in 1u64..5) {
        let cfg = PipelineCfg {
            len,
            state: StateDist::Uniform(1, 256),
            max_q,
            max_rate_scale: scale,
        };
        let g = gen::pipeline(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        prop_assert!(ra.check_balance(&g));
        let g_all = ra.repetitions.iter().copied().fold(0, gcd_u64);
        prop_assert_eq!(g_all, 1, "repetition vector must be minimal");
    }

    /// Layered dags have single io, are rate matched, and every node is on
    /// a source-to-sink path (positive repetition count).
    #[test]
    fn layered_dags_are_wellformed(seed in 0u64..10_000, layers in 1usize..6,
                                   width in 1usize..6, max_q in 1u64..5) {
        let cfg = LayeredCfg {
            layers,
            max_width: width,
            density: 0.3,
            state: StateDist::Uniform(1, 128),
            max_q,
        };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        prop_assert!(ra.check_balance(&g));
        prop_assert!(ra.repetitions.iter().all(|&q| q > 0));
    }

    /// Gains are multiplicative along every edge: gain(dst) =
    /// gain(src) * produce / consume.
    #[test]
    fn gains_multiply_along_edges(seed in 0u64..10_000) {
        let cfg = LayeredCfg { max_q: 4, ..LayeredCfg::default() };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze_single_io(&g).unwrap();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let lhs = ra.gain(edge.dst);
            let rhs = ra.gain(edge.src)
                * Ratio::new(edge.produce as i128, edge.consume as i128);
            prop_assert_eq!(lhs, rhs);
        }
    }

    /// Topological rank orders every edge source before its destination,
    /// and reachability agrees with rank for comparable pairs.
    #[test]
    fn topo_and_reachability_agree(seed in 0u64..10_000) {
        let g = gen::layered(&LayeredCfg::default(), seed);
        let rank = topo::topo_rank(&g);
        let reach = topo::Reachability::compute(&g);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            prop_assert!(rank[edge.src.idx()] < rank[edge.dst.idx()]);
            prop_assert!(reach.precedes(edge.src, edge.dst));
        }
        for u in g.node_ids() {
            for v in g.node_ids() {
                if reach.precedes(u, v) {
                    prop_assert!(rank[u.idx()] < rank[v.idx()]);
                    prop_assert!(!reach.precedes(v, u));
                }
            }
        }
    }

    /// The closed-form tight minimum buffer is exactly the smallest
    /// capacity under which an edge is schedulable.
    #[test]
    fn minbuf_closed_form_matches_simulation(p in 1u64..40, c in 1u64..40) {
        let tight = p + c - gcd_u64(p, c);
        prop_assert!(buffers::edge_schedulable_with_capacity(p, c, tight));
        prop_assert!(!buffers::edge_schedulable_with_capacity(p, c, tight - 1));
    }

    /// Super-endpoint augmentation always yields a rate-matched single-io
    /// graph whose interior repetition vector is preserved up to scale.
    #[test]
    fn super_endpoints_preserve_rates(seed in 0u64..10_000) {
        let cfg = LayeredCfg { max_q: 3, ..LayeredCfg::default() };
        let g = gen::layered(&cfg, seed);
        let ra = RateAnalysis::analyze(&g).unwrap();
        let g2 = gen::add_super_endpoints(&g);
        let ra2 = RateAnalysis::analyze_single_io(&g2).unwrap();
        prop_assert!(ra2.check_balance(&g2));
        // Node v in g is node v+1 in g2; ratios must match across nodes.
        for v in g.node_ids() {
            for w in g.node_ids() {
                let r1 = ra.gain_from(v, w);
                let r2 = ra2.gain_from(
                    ccs_graph::NodeId(v.0 + 1),
                    ccs_graph::NodeId(w.0 + 1),
                );
                prop_assert_eq!(r1, r2);
            }
        }
    }
}
