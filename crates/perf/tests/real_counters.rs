//! Integration test against the real PMU. Ignored by default: whether
//! counters open depends on the environment (`perf_event_paranoid`,
//! container seccomp policy, VM PMU passthrough), so CI can't rely on
//! it. Run with `cargo test -p ccs-perf -- --ignored` on a host where
//! `perf stat true` works.

use ccs_perf::{CounterBuilder, CounterKind, CounterSet};

/// Touch enough memory to make the counters move: stride over a buffer
/// comfortably larger than typical LLCs.
fn thrash(words: usize) -> u64 {
    let mut buf = vec![1u64; words];
    let mut acc = 0u64;
    for round in 0..4u64 {
        for i in (0..buf.len()).step_by(8) {
            buf[i] = buf[i].wrapping_mul(round + 3).wrapping_add(i as u64);
            acc = acc.wrapping_add(buf[i]);
        }
    }
    acc
}

#[test]
#[ignore = "requires perf_event_open permission (perf_event_paranoid <= 2 outside containers)"]
fn real_counters_count_real_work() {
    let set = CounterBuilder::cache_suite().open_self_thread();
    let CounterSet::Active(_) = &set else {
        panic!(
            "counters unavailable on this host: {} — run on a machine where `perf stat true` works",
            set.reason().unwrap_or("?")
        );
    };

    set.reset();
    set.enable();
    let acc = thrash(8 << 20); // 64 MiB: far past any LLC
    set.disable();
    let sample = set.sample().expect("group read succeeds");
    assert_ne!(acc, 0); // keep the work observable

    // The thread executed billions of nothing? No: instructions must
    // have advanced, and the task clock must show CPU time.
    let instructions = sample.get(CounterKind::Instructions);
    if let Some(ins) = instructions {
        assert!(ins > 1_000_000, "{ins} instructions for 64 MiB of strides");
    }
    assert!(sample.get(CounterKind::TaskClock).unwrap_or(0) > 0 || instructions.is_some());

    // A 64 MiB stride working set cannot fit any LLC: if the LLC miss
    // event opened, it must have fired.
    if let Some(misses) = sample.get(CounterKind::LlcMisses) {
        assert!(misses > 0, "64 MiB thrash produced zero LLC misses?");
    }

    // Enabled/running bookkeeping is sane.
    assert!(sample.time_enabled_ns > 0);
    assert!(sample.time_running_ns <= sample.time_enabled_ns || !sample.multiplexed());
}

#[test]
#[ignore = "requires perf_event_open permission"]
fn reset_zeroes_and_reenable_counts_again() {
    let set = CounterBuilder::new()
        .counter(CounterKind::Instructions)
        .counter(CounterKind::TaskClock)
        .open_self_thread();
    if !set.is_active() {
        panic!("counters unavailable: {}", set.reason().unwrap_or("?"));
    }
    set.enable();
    let _ = thrash(1 << 16);
    set.disable();
    let first = set.sample().unwrap();

    set.reset();
    let after_reset = set.sample().unwrap();
    let moved = |s: &ccs_perf::CounterSample| s.readings.iter().map(|r| r.raw).sum::<u64>();
    assert!(moved(&after_reset) < moved(&first).max(1));

    set.enable();
    let _ = thrash(1 << 16);
    set.disable();
    assert!(moved(&set.sample().unwrap()) > 0);
}
