//! The Linux half: `perf_event_attr` construction, group opening via the
//! raw syscall, ioctls, and group reads. Everything here is
//! `cfg(target_os = "linux")` — the portable API in `lib.rs` is the only
//! thing other crates see.

use crate::read::{parse_group_read, scale};
use crate::{CounterKind, CounterSample, Reading};
use libc::{c_int, c_ulong};

/// Build the attribute block for one event. The leader starts disabled
/// (so the whole group springs to life atomically on one
/// `PERF_EVENT_IOC_ENABLE`); members start enabled and simply follow
/// the leader. Kernel and hypervisor work is excluded so unprivileged
/// processes (perf_event_paranoid = 2) can still open the counters.
pub(crate) fn attr_for(kind: CounterKind, leader: bool) -> libc::perf_event_attr {
    let (type_, config) = event_code(kind);
    let mut flags = libc::PERF_ATTR_FLAG_EXCLUDE_KERNEL | libc::PERF_ATTR_FLAG_EXCLUDE_HV;
    if leader {
        flags |= libc::PERF_ATTR_FLAG_DISABLED;
    }
    libc::perf_event_attr {
        type_,
        size: libc::PERF_ATTR_SIZE_VER1,
        config,
        read_format: libc::PERF_FORMAT_TOTAL_TIME_ENABLED
            | libc::PERF_FORMAT_TOTAL_TIME_RUNNING
            | libc::PERF_FORMAT_GROUP,
        flags,
        ..Default::default()
    }
}

/// The `(attr.type, attr.config)` encoding of each counter kind.
pub(crate) fn event_code(kind: CounterKind) -> (u32, u64) {
    let cache = |id: u64, op: u64, result: u64| id | (op << 8) | (result << 16);
    match kind {
        CounterKind::Cycles => (libc::PERF_TYPE_HARDWARE, libc::PERF_COUNT_HW_CPU_CYCLES),
        CounterKind::Instructions => (libc::PERF_TYPE_HARDWARE, libc::PERF_COUNT_HW_INSTRUCTIONS),
        CounterKind::CacheReferences => (
            libc::PERF_TYPE_HARDWARE,
            libc::PERF_COUNT_HW_CACHE_REFERENCES,
        ),
        CounterKind::CacheMisses => (libc::PERF_TYPE_HARDWARE, libc::PERF_COUNT_HW_CACHE_MISSES),
        CounterKind::LlcReferences => (
            libc::PERF_TYPE_HW_CACHE,
            cache(
                libc::PERF_COUNT_HW_CACHE_LL,
                libc::PERF_COUNT_HW_CACHE_OP_READ,
                libc::PERF_COUNT_HW_CACHE_RESULT_ACCESS,
            ),
        ),
        CounterKind::LlcMisses => (
            libc::PERF_TYPE_HW_CACHE,
            cache(
                libc::PERF_COUNT_HW_CACHE_LL,
                libc::PERF_COUNT_HW_CACHE_OP_READ,
                libc::PERF_COUNT_HW_CACHE_RESULT_MISS,
            ),
        ),
        CounterKind::TaskClock => (libc::PERF_TYPE_SOFTWARE, libc::PERF_COUNT_SW_TASK_CLOCK),
    }
}

/// `perf_event_open(2)` for the calling thread (`pid = 0, cpu = -1`):
/// count this thread wherever it runs — the self-monitoring attach each
/// worker performs after pinning itself.
fn open_self(attr: &libc::perf_event_attr, group_fd: c_int) -> Result<c_int, std::io::Error> {
    let fd = unsafe {
        libc::syscall(
            libc::SYS_perf_event_open,
            attr as *const libc::perf_event_attr,
            0 as libc::pid_t,
            -1 as c_int,
            group_fd,
            libc::PERF_FLAG_FD_CLOEXEC,
        )
    };
    if fd < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(fd as c_int)
    }
}

/// An open group of counters on the calling thread. Reads are atomic
/// across the group (`read_format = GROUP`): one `read(2)` on the
/// leader snapshots every member at the same instant, so ratios like
/// IPC and miss rates are internally consistent.
pub struct CounterGroup {
    /// Leader fd (also the read target).
    leader: c_int,
    /// Member fds, in open order.
    members: Vec<c_int>,
    /// Kind of each event, leader first — parallel to the value order
    /// of a group read.
    kinds: Vec<CounterKind>,
}

// The fds are plain thread-local counters; reading from another thread
// is allowed by the kernel (it just reads the same event).
unsafe impl Send for CounterGroup {}

impl CounterGroup {
    /// Kinds actually opened, leader first.
    pub fn kinds(&self) -> &[CounterKind] {
        &self.kinds
    }

    fn ioctl_all(&self, request: c_ulong) {
        unsafe {
            libc::ioctl(self.leader, request, libc::PERF_IOC_FLAG_GROUP);
        }
    }

    /// Start the whole group atomically.
    pub fn enable(&self) {
        self.ioctl_all(libc::PERF_EVENT_IOC_ENABLE);
    }

    /// Stop the whole group atomically.
    pub fn disable(&self) {
        self.ioctl_all(libc::PERF_EVENT_IOC_DISABLE);
    }

    /// Zero every counter value (the kernel's `time_enabled` /
    /// `time_running` bases keep accumulating — they describe the
    /// group, not the counts).
    pub fn reset(&self) {
        self.ioctl_all(libc::PERF_EVENT_IOC_RESET);
    }

    /// Snapshot the group: one atomic read, parsed and scaled for
    /// multiplexing. `None` only if the kernel read fails or returns a
    /// malformed buffer.
    pub fn sample(&self) -> Option<CounterSample> {
        let mut buf = vec![0u64; 3 + self.kinds.len()];
        let bytes = std::mem::size_of_val(&buf[..]);
        let n = unsafe { libc::read(self.leader, buf.as_mut_ptr().cast::<u8>(), bytes) };
        if n < 0 {
            return None;
        }
        let words = &buf[..(n as usize) / 8];
        let g = parse_group_read(words)?;
        if g.values.len() != self.kinds.len() {
            return None;
        }
        Some(CounterSample {
            time_enabled_ns: g.time_enabled,
            time_running_ns: g.time_running,
            readings: self
                .kinds
                .iter()
                .zip(&g.values)
                .map(|(&kind, &raw)| Reading {
                    kind,
                    raw,
                    scaled: scale(raw, g.time_enabled, g.time_running),
                })
                .collect(),
        })
    }
}

impl Drop for CounterGroup {
    fn drop(&mut self) {
        unsafe {
            for &fd in &self.members {
                libc::close(fd);
            }
            libc::close(self.leader);
        }
    }
}

/// Open `kinds` as one group on the calling thread. The first kind the
/// kernel accepts becomes the leader; later kinds that fail to open
/// (PMU without that event, counter budget exhausted) are silently
/// dropped — partial groups are better than none. Only a total failure
/// (no event opens at all) is an error, with the errno of the last
/// attempt plus a `perf_event_paranoid` hint where it applies.
pub(crate) fn open_group(kinds: &[CounterKind]) -> Result<CounterGroup, String> {
    let mut group: Option<CounterGroup> = None;
    let mut last_err: Option<std::io::Error> = None;
    for &kind in kinds {
        match &mut group {
            None => match open_self(&attr_for(kind, true), -1) {
                Ok(fd) => {
                    group = Some(CounterGroup {
                        leader: fd,
                        members: Vec::new(),
                        kinds: vec![kind],
                    });
                }
                Err(e) => last_err = Some(e),
            },
            Some(g) => {
                if let Ok(fd) = open_self(&attr_for(kind, false), g.leader) {
                    g.members.push(fd);
                    g.kinds.push(kind);
                }
            }
        }
    }
    group.ok_or_else(|| {
        let e = last_err.expect("at least one open attempted");
        let hint = match e.raw_os_error() {
            // EACCES/EPERM: kernel.perf_event_paranoid (or a seccomp
            // filter) forbids unprivileged counters.
            Some(1) | Some(13) => " (check /proc/sys/kernel/perf_event_paranoid, see README)",
            _ => "",
        };
        format!("perf_event_open failed: {e}{hint}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_construction_leader_vs_member() {
        let leader = attr_for(CounterKind::LlcMisses, true);
        assert_eq!(leader.type_, libc::PERF_TYPE_HW_CACHE);
        // LL | (READ << 8) | (MISS << 16)
        assert_eq!(leader.config, 0x1_00_02);
        assert_eq!(leader.size, libc::PERF_ATTR_SIZE_VER1);
        assert_eq!(
            leader.read_format,
            libc::PERF_FORMAT_GROUP
                | libc::PERF_FORMAT_TOTAL_TIME_ENABLED
                | libc::PERF_FORMAT_TOTAL_TIME_RUNNING
        );
        assert_ne!(leader.flags & libc::PERF_ATTR_FLAG_DISABLED, 0);
        assert_ne!(leader.flags & libc::PERF_ATTR_FLAG_EXCLUDE_KERNEL, 0);
        assert_ne!(leader.flags & libc::PERF_ATTR_FLAG_EXCLUDE_HV, 0);
        // Counting mode: no sampling configured.
        assert_eq!(leader.sample_period_or_freq, 0);
        assert_eq!(leader.sample_type, 0);

        let member = attr_for(CounterKind::LlcMisses, false);
        assert_eq!(member.flags & libc::PERF_ATTR_FLAG_DISABLED, 0);
        assert_eq!(member.read_format, leader.read_format);
    }

    #[test]
    fn event_codes_match_the_kernel_abi() {
        assert_eq!(
            event_code(CounterKind::Cycles),
            (libc::PERF_TYPE_HARDWARE, 0)
        );
        assert_eq!(
            event_code(CounterKind::Instructions),
            (libc::PERF_TYPE_HARDWARE, 1)
        );
        assert_eq!(
            event_code(CounterKind::CacheMisses),
            (libc::PERF_TYPE_HARDWARE, 3)
        );
        // LLC references: LL | (READ << 8) | (ACCESS << 16) = 2.
        assert_eq!(
            event_code(CounterKind::LlcReferences),
            (libc::PERF_TYPE_HW_CACHE, 0x0_00_02)
        );
        assert_eq!(
            event_code(CounterKind::TaskClock),
            (libc::PERF_TYPE_SOFTWARE, 1)
        );
    }
}
