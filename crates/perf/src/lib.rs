//! # ccs-perf — hardware performance counters for the executors
//!
//! The paper's headline claim is that cache-conscious scheduling
//! reduces *cache misses*, not just wall-clock time. This crate makes
//! that directly measurable: a safe wrapper over Linux
//! `perf_event_open(2)` (reached through the vendored `libc` shim's raw
//! `syscall`, since glibc never wrapped it) that each worker thread
//! uses to count its own LLC misses, instructions, and cycles around
//! steady-state execution.
//!
//! Design points:
//!
//! * **Groups, read atomically.** All of a thread's counters are opened
//!   as one group (`read_format = GROUP`): a single `read(2)` on the
//!   leader snapshots every member at the same instant, so derived
//!   ratios (IPC, miss rate, MPKI) are internally consistent.
//! * **Multiplex-scaled readings.** When the PMU is oversubscribed the
//!   kernel time-slices groups; readings are extrapolated by
//!   `time_enabled / time_running` ([`read::scale`]) and flagged as
//!   [`CounterSample::multiplexed`].
//! * **Self-monitoring attach.** Counters are opened with
//!   `pid = 0, cpu = -1` — this thread, wherever it runs — after the
//!   worker has pinned itself, so per-worker readings attribute misses
//!   to the placement decision that scheduled the segment there.
//! * **Graceful unavailability.** Containers, `perf_event_paranoid`,
//!   missing PMUs, and non-Linux hosts all land in
//!   [`CounterSet::Unavailable`] with a human-readable reason; every
//!   consumer keeps working, reporting `counters: unavailable` instead
//!   of numbers. `CCS_NO_PERF=1` forces this path (useful to make CI
//!   deterministic).
//!
//! Consumers: `ccs-exec` workers and the `ccs-runtime` serial executor
//! sample around their firing loops (optionally discarding a warmup
//! window via [`CounterSet::reset`] and attributing batch windows to
//! segments via [`CounterSample::delta_since`]); `ccs run-dag
//! --counters` and the `e20_cache_counters` / `e21_steady_state`
//! experiments report misses per item by placement mode. The
//! measurement methodology is documented in `docs/MEASUREMENT.md`.

#![warn(missing_docs)]

pub mod read;

#[cfg(target_os = "linux")]
mod sys;
#[cfg(target_os = "linux")]
pub use sys::CounterGroup;

/// What to count. The set mirrors `perf stat`'s cache view: the two
/// generic hardware cache events, the two LLC-specific cache-hierarchy
/// events, the work denominators (instructions, cycles), and the
/// software task clock (always available, even without a PMU).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// `PERF_COUNT_HW_CPU_CYCLES`.
    Cycles,
    /// `PERF_COUNT_HW_INSTRUCTIONS`.
    Instructions,
    /// `PERF_COUNT_HW_CACHE_REFERENCES` (any-level, CPU-defined).
    CacheReferences,
    /// `PERF_COUNT_HW_CACHE_MISSES` (any-level, CPU-defined).
    CacheMisses,
    /// LLC read accesses (`PERF_TYPE_HW_CACHE`: LL × read × access).
    LlcReferences,
    /// LLC read misses (`PERF_TYPE_HW_CACHE`: LL × read × miss) — the
    /// quantity the paper's bandwidth bound is about.
    LlcMisses,
    /// `PERF_COUNT_SW_TASK_CLOCK`: ns of CPU time, kernel-maintained.
    TaskClock,
}

impl CounterKind {
    /// Every kind, in the order [`CounterBuilder::cache_suite`] opens
    /// them (hardware first so a hardware event leads the group).
    pub const ALL: [CounterKind; 7] = [
        CounterKind::LlcMisses,
        CounterKind::LlcReferences,
        CounterKind::CacheMisses,
        CounterKind::CacheReferences,
        CounterKind::Instructions,
        CounterKind::Cycles,
        CounterKind::TaskClock,
    ];

    /// `perf stat`-style event name.
    pub fn name(&self) -> &'static str {
        match self {
            CounterKind::Cycles => "cycles",
            CounterKind::Instructions => "instructions",
            CounterKind::CacheReferences => "cache-references",
            CounterKind::CacheMisses => "cache-misses",
            CounterKind::LlcReferences => "llc-references",
            CounterKind::LlcMisses => "llc-misses",
            CounterKind::TaskClock => "task-clock",
        }
    }

    /// Snake-case key for JSON reports (`ccs run-dag --counters`,
    /// `e20_cache_counters`).
    pub fn json_key(&self) -> &'static str {
        match self {
            CounterKind::Cycles => "cycles",
            CounterKind::Instructions => "instructions",
            CounterKind::CacheReferences => "cache_references",
            CounterKind::CacheMisses => "cache_misses",
            CounterKind::LlcReferences => "llc_references",
            CounterKind::LlcMisses => "llc_misses",
            CounterKind::TaskClock => "task_clock_ns",
        }
    }
}

/// One counter's value within a sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reading {
    /// Which event this value belongs to.
    pub kind: CounterKind,
    /// What the hardware counted while the event was on the PMU.
    pub raw: u64,
    /// `raw` extrapolated over multiplexing ([`read::scale`]); equals
    /// `raw` when the group ran the whole time it was enabled.
    pub scaled: u64,
}

/// An atomic snapshot of a counter group (or, via [`CounterSample::merge`],
/// the sum of several workers' snapshots).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// Nanoseconds the group was enabled (summed across merges).
    pub time_enabled_ns: u64,
    /// Nanoseconds the group was actually counting.
    pub time_running_ns: u64,
    /// Per-kind readings, group order (leader first).
    pub readings: Vec<Reading>,
}

impl CounterSample {
    /// Scaled value of `kind`, if that event was opened.
    pub fn get(&self, kind: CounterKind) -> Option<u64> {
        self.readings
            .iter()
            .find(|r| r.kind == kind)
            .map(|r| r.scaled)
    }

    /// Whether the kernel time-sliced the group (readings are then
    /// scaled estimates rather than exact counts).
    pub fn multiplexed(&self) -> bool {
        self.time_running_ns < self.time_enabled_ns
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> Option<f64> {
        ratio(
            self.get(CounterKind::Instructions)?,
            self.get(CounterKind::Cycles)?,
        )
    }

    /// LLC misses per thousand instructions — the architecture
    /// literature's MPKI.
    pub fn mpki(&self) -> Option<f64> {
        let misses = self.get(CounterKind::LlcMisses)?;
        let instructions = self.get(CounterKind::Instructions)?;
        ratio(misses * 1000, instructions)
    }

    /// LLC miss rate: misses / references.
    pub fn llc_miss_rate(&self) -> Option<f64> {
        ratio(
            self.get(CounterKind::LlcMisses)?,
            self.get(CounterKind::LlcReferences)?,
        )
    }

    /// Scaled count of `kind` per processed item — with
    /// [`CounterKind::LlcMisses`], the paper's misses-per-item metric.
    pub fn per_item(&self, kind: CounterKind, items: u64) -> Option<f64> {
        if items == 0 {
            return None;
        }
        Some(self.get(kind)? as f64 / items as f64)
    }

    /// The counting *window* between an earlier snapshot of the same
    /// (cumulative, un-reset) group and this one: per-kind raw
    /// differences, differenced time bases, and the raw deltas
    /// re-extrapolated over the window's own multiplexing ratio
    /// ([`read::scale`] on the differenced times — the cumulative
    /// `scaled` fields cannot be subtracted, because each snapshot is
    /// extrapolated over a different ratio).
    ///
    /// This is how a worker attributes one segment batch's counts: read
    /// before, read after, `after.delta_since(&before)`. Two plain
    /// `read(2)`s per window — no reset, so the group's cumulative
    /// totals (the per-worker reading) survive. Kinds missing from
    /// `earlier` are treated as starting at zero; counter wrap-around
    /// (or a reset between the two snapshots) saturates at zero rather
    /// than producing garbage.
    pub fn delta_since(&self, earlier: &CounterSample) -> CounterSample {
        let dte = self.time_enabled_ns.saturating_sub(earlier.time_enabled_ns);
        let dtr = self.time_running_ns.saturating_sub(earlier.time_running_ns);
        CounterSample {
            time_enabled_ns: dte,
            time_running_ns: dtr,
            readings: self
                .readings
                .iter()
                .map(|r| {
                    let before = earlier
                        .readings
                        .iter()
                        .find(|e| e.kind == r.kind)
                        .map_or(0, |e| e.raw);
                    let raw = r.raw.saturating_sub(before);
                    Reading {
                        kind: r.kind,
                        raw,
                        scaled: read::scale(raw, dte, dtr),
                    }
                })
                .collect(),
        }
    }

    /// Accumulate another sample into this one: per-kind scaled and raw
    /// sums, summed time bases. Kinds present only in `other` are
    /// appended, so merging workers with differently-degraded groups
    /// keeps every event that counted anywhere.
    pub fn merge(&mut self, other: &CounterSample) {
        self.time_enabled_ns += other.time_enabled_ns;
        self.time_running_ns += other.time_running_ns;
        for r in &other.readings {
            match self.readings.iter_mut().find(|m| m.kind == r.kind) {
                Some(m) => {
                    m.raw += r.raw;
                    m.scaled += r.scaled;
                }
                None => self.readings.push(*r),
            }
        }
    }

    /// Sum samples (e.g. per-worker → per-run). `None` for an empty
    /// iterator — no worker had counters.
    pub fn sum<'a>(samples: impl IntoIterator<Item = &'a CounterSample>) -> Option<CounterSample> {
        let mut iter = samples.into_iter();
        let mut total = iter.next()?.clone();
        for s in iter {
            total.merge(s);
        }
        Some(total)
    }

    /// `(json key, scaled value)` for every kind in [`CounterKind::ALL`]
    /// — the single source of truth for report renderers, so a counter
    /// kind added here shows up in every JSON schema automatically.
    /// Events that did not open are `None`.
    pub fn event_kv(&self) -> Vec<(&'static str, Option<u64>)> {
        CounterKind::ALL
            .iter()
            .map(|&k| (k.json_key(), self.get(k)))
            .collect()
    }

    /// `(json key, value)` for the derived metrics. The misses-per-item
    /// entry is emitted only when the caller can attribute items to
    /// this sample (`items = Some(..)`): per-worker samples have no
    /// item denominator, and an absent key is honest where a `null`
    /// would read as "event didn't open".
    pub fn derived_kv(&self, items: Option<u64>) -> Vec<(&'static str, Option<f64>)> {
        let mut kv = Vec::with_capacity(4);
        if let Some(items) = items {
            kv.push((
                "llc_misses_per_item",
                self.per_item(CounterKind::LlcMisses, items),
            ));
        }
        kv.push(("mpki", self.mpki()));
        kv.push(("ipc", self.ipc()));
        kv.push(("llc_miss_rate", self.llc_miss_rate()));
        kv
    }

    /// JSON rendering: every event key (null where the event did not
    /// open), the derived metrics, and the multiplexed flag — the one
    /// renderer behind `ccs run-dag --counters` and
    /// `e20_cache_counters`, so their schemas cannot drift apart.
    pub fn to_json(&self, items: Option<u64>) -> serde_json::Value {
        let mut pairs: Vec<(String, serde_json::Value)> = Vec::new();
        for (key, v) in self.event_kv() {
            let v = serde_json::to_value(v).unwrap_or(serde_json::Value::Null);
            pairs.push((key.to_string(), v));
        }
        for (key, v) in self.derived_kv(items) {
            let v = serde_json::to_value(v).unwrap_or(serde_json::Value::Null);
            pairs.push((key.to_string(), v));
        }
        pairs.push((
            "multiplexed".to_string(),
            serde_json::Value::Bool(self.multiplexed()),
        ));
        serde_json::Value::Object(pairs)
    }
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    (den != 0).then(|| num as f64 / den as f64)
}

/// A set of counters on the calling thread: either an open group or an
/// explanation of why there is none. Every operation on the
/// `Unavailable` arm is a no-op, so instrumented code paths never need
/// to branch on availability.
pub enum CounterSet {
    /// Counters are open and countable.
    Active(CounterGroup),
    /// Nothing could be opened (syscall denied, no PMU, non-Linux,
    /// `CCS_NO_PERF`, or counters simply not requested).
    Unavailable {
        /// Human-readable cause, surfaced in CLI/bench output.
        reason: String,
    },
}

impl CounterSet {
    /// The standard fallback constructor.
    pub fn unavailable(reason: impl Into<String>) -> CounterSet {
        CounterSet::Unavailable {
            reason: reason.into(),
        }
    }

    /// Whether a counter group is actually open.
    pub fn is_active(&self) -> bool {
        matches!(self, CounterSet::Active(_))
    }

    /// Why the set is unavailable (`None` when active).
    pub fn reason(&self) -> Option<&str> {
        match self {
            CounterSet::Active(_) => None,
            CounterSet::Unavailable { reason } => Some(reason),
        }
    }

    /// Kinds actually opened (empty when unavailable).
    pub fn kinds(&self) -> &[CounterKind] {
        match self {
            CounterSet::Active(g) => g.kinds(),
            CounterSet::Unavailable { .. } => &[],
        }
    }

    /// Start counting (atomically across the group).
    pub fn enable(&self) {
        if let CounterSet::Active(g) = self {
            g.enable();
        }
    }

    /// Stop counting.
    pub fn disable(&self) {
        if let CounterSet::Active(g) = self {
            g.disable();
        }
    }

    /// Zero the counter values.
    pub fn reset(&self) {
        if let CounterSet::Active(g) = self {
            g.reset();
        }
    }

    /// Snapshot the group; `None` when unavailable (or on a failed
    /// kernel read).
    pub fn sample(&self) -> Option<CounterSample> {
        match self {
            CounterSet::Active(g) => g.sample(),
            CounterSet::Unavailable { .. } => None,
        }
    }
}

/// Stub group type for non-Linux targets: never constructed (the
/// builder always returns [`CounterSet::Unavailable`] there), so its
/// methods are statically unreachable.
#[cfg(not(target_os = "linux"))]
pub struct CounterGroup {
    never: std::convert::Infallible,
}

#[cfg(not(target_os = "linux"))]
impl CounterGroup {
    /// Kinds opened (unreachable: the stub is never constructed).
    pub fn kinds(&self) -> &[CounterKind] {
        match self.never {}
    }
    /// Start counting (unreachable).
    pub fn enable(&self) {
        match self.never {}
    }
    /// Stop counting (unreachable).
    pub fn disable(&self) {
        match self.never {}
    }
    /// Zero the counters (unreachable).
    pub fn reset(&self) {
        match self.never {}
    }
    /// Snapshot the group (unreachable).
    pub fn sample(&self) -> Option<CounterSample> {
        match self.never {}
    }
}

/// Chooses which counters to open and opens them on the calling thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterBuilder {
    kinds: Vec<CounterKind>,
}

impl CounterBuilder {
    /// An empty builder; add kinds with [`CounterBuilder::counter`].
    pub fn new() -> CounterBuilder {
        CounterBuilder::default()
    }

    /// The full cache-measurement suite ([`CounterKind::ALL`]), hardware
    /// events first so one of them leads the group.
    pub fn cache_suite() -> CounterBuilder {
        CounterBuilder {
            kinds: CounterKind::ALL.to_vec(),
        }
    }

    /// Add a counter kind (duplicates are ignored).
    pub fn counter(mut self, kind: CounterKind) -> CounterBuilder {
        if !self.kinds.contains(&kind) {
            self.kinds.push(kind);
        }
        self
    }

    /// Kinds this builder will try to open, in order.
    pub fn kinds(&self) -> &[CounterKind] {
        &self.kinds
    }

    /// Open the counters as one group monitoring the calling thread.
    /// Kinds the kernel rejects individually are dropped; if nothing
    /// opens at all (or the platform/environment rules it out), the
    /// result is [`CounterSet::Unavailable`] with the reason — callers
    /// proceed identically either way.
    pub fn open_self_thread(&self) -> CounterSet {
        if let Some(reason) = env_disable_reason(std::env::var("CCS_NO_PERF").ok().as_deref()) {
            return CounterSet::Unavailable { reason };
        }
        if self.kinds.is_empty() {
            return CounterSet::unavailable("no counters requested");
        }
        self.open_platform()
    }

    #[cfg(target_os = "linux")]
    fn open_platform(&self) -> CounterSet {
        match sys::open_group(&self.kinds) {
            Ok(group) => CounterSet::Active(group),
            Err(reason) => CounterSet::Unavailable { reason },
        }
    }

    #[cfg(not(target_os = "linux"))]
    fn open_platform(&self) -> CounterSet {
        CounterSet::unavailable("perf_event_open is Linux-only")
    }
}

/// The `CCS_NO_PERF` kill switch, factored over the raw env value so
/// the policy is testable without mutating process state.
fn env_disable_reason(value: Option<&str>) -> Option<String> {
    match value {
        Some(v) if !v.is_empty() && v != "0" => Some("disabled by CCS_NO_PERF".to_string()),
        _ => None,
    }
}

/// Counter availability on this host, for diagnostics (`ccs topo`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Probe {
    /// Whether any counter opened.
    pub available: bool,
    /// Names of the events that opened, group order.
    pub events: Vec<&'static str>,
    /// Why nothing opened (when `available` is false).
    pub reason: Option<String>,
}

/// Try to open (and immediately close) the cache suite on this thread.
pub fn probe() -> Probe {
    let set = CounterBuilder::cache_suite().open_self_thread();
    Probe {
        available: set.is_active(),
        events: set.kinds().iter().map(|k| k.name()).collect(),
        reason: set.reason().map(str::to_string),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(readings: &[(CounterKind, u64)]) -> CounterSample {
        CounterSample {
            time_enabled_ns: 1_000,
            time_running_ns: 1_000,
            readings: readings
                .iter()
                .map(|&(kind, v)| Reading {
                    kind,
                    raw: v,
                    scaled: v,
                })
                .collect(),
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample(&[
            (CounterKind::LlcMisses, 500),
            (CounterKind::LlcReferences, 2_000),
            (CounterKind::Instructions, 1_000_000),
            (CounterKind::Cycles, 500_000),
        ]);
        assert_eq!(s.ipc(), Some(2.0));
        assert_eq!(s.mpki(), Some(0.5));
        assert_eq!(s.llc_miss_rate(), Some(0.25));
        assert_eq!(s.per_item(CounterKind::LlcMisses, 100), Some(5.0));
        assert_eq!(s.per_item(CounterKind::LlcMisses, 0), None);
        assert!(!s.multiplexed());
    }

    #[test]
    fn missing_events_yield_none_not_garbage() {
        let s = sample(&[(CounterKind::Instructions, 10)]);
        assert_eq!(s.ipc(), None);
        assert_eq!(s.mpki(), None);
        assert_eq!(s.llc_miss_rate(), None);
        assert_eq!(s.get(CounterKind::TaskClock), None);
        // Zero denominators are None, not inf/NaN.
        let z = sample(&[(CounterKind::Instructions, 10), (CounterKind::Cycles, 0)]);
        assert_eq!(z.ipc(), None);
    }

    #[test]
    fn delta_since_isolates_a_window() {
        // Cumulative snapshots before and after one segment batch.
        let before = CounterSample {
            time_enabled_ns: 1_000,
            time_running_ns: 1_000,
            readings: vec![Reading {
                kind: CounterKind::LlcMisses,
                raw: 40,
                scaled: 40,
            }],
        };
        let after = CounterSample {
            time_enabled_ns: 3_000,
            time_running_ns: 2_000,
            readings: vec![Reading {
                kind: CounterKind::LlcMisses,
                raw: 100,
                scaled: 150,
            }],
        };
        let d = after.delta_since(&before);
        assert_eq!(d.time_enabled_ns, 2_000);
        assert_eq!(d.time_running_ns, 1_000);
        let r = d.readings[0];
        assert_eq!(r.raw, 60);
        // Rescaled over the window's OWN ratio (2000/1000), not a
        // difference of the cumulative scaled fields (150-40 = 110).
        assert_eq!(r.scaled, 120);
        assert!(d.multiplexed());
    }

    #[test]
    fn delta_since_tolerates_new_kinds_and_wraps() {
        let before = sample(&[(CounterKind::Cycles, 500)]);
        // After: cycles wrapped (or were reset) below the earlier value,
        // and instructions appeared (kind absent earlier => from 0).
        let mut after = sample(&[(CounterKind::Cycles, 100), (CounterKind::Instructions, 7)]);
        after.time_enabled_ns = 2_000;
        after.time_running_ns = 2_000;
        let d = after.delta_since(&before);
        assert_eq!(d.get(CounterKind::Cycles), Some(0)); // saturates
        assert_eq!(d.get(CounterKind::Instructions), Some(7));
        assert_eq!(d.time_enabled_ns, 1_000);
        assert!(!d.multiplexed());
        // Windows compose: summing disjoint deltas never exceeds the
        // cumulative total (raw counts).
        let total = sample(&[(CounterKind::Cycles, 1_000)]);
        let w1 = sample(&[(CounterKind::Cycles, 300)]).delta_since(&sample(&[]));
        let w2 = total.delta_since(&sample(&[(CounterKind::Cycles, 600)]));
        let sum: u64 = [w1, w2]
            .iter()
            .filter_map(|w| w.readings.iter().find(|r| r.kind == CounterKind::Cycles))
            .map(|r| r.raw)
            .sum();
        assert!(sum <= 1_000);
    }

    #[test]
    fn merge_sums_matching_kinds_and_appends_new_ones() {
        let mut a = sample(&[(CounterKind::LlcMisses, 10), (CounterKind::Cycles, 100)]);
        let b = sample(&[(CounterKind::LlcMisses, 5), (CounterKind::Instructions, 7)]);
        a.merge(&b);
        assert_eq!(a.get(CounterKind::LlcMisses), Some(15));
        assert_eq!(a.get(CounterKind::Cycles), Some(100));
        assert_eq!(a.get(CounterKind::Instructions), Some(7));
        assert_eq!(a.time_enabled_ns, 2_000);
    }

    #[test]
    fn sum_over_workers() {
        let parts = [
            sample(&[(CounterKind::LlcMisses, 1)]),
            sample(&[(CounterKind::LlcMisses, 2)]),
            sample(&[(CounterKind::LlcMisses, 3)]),
        ];
        let total = CounterSample::sum(&parts).unwrap();
        assert_eq!(total.get(CounterKind::LlcMisses), Some(6));
        assert_eq!(CounterSample::sum([]), None);
    }

    #[test]
    fn kv_renderings_cover_every_kind_and_gate_per_item() {
        let s = sample(&[(CounterKind::LlcMisses, 10), (CounterKind::Instructions, 5)]);
        let events = s.event_kv();
        assert_eq!(events.len(), CounterKind::ALL.len());
        assert!(events.contains(&("llc_misses", Some(10))));
        assert!(events.contains(&("cycles", None)));
        assert!(events.iter().any(|&(k, _)| k == "task_clock_ns"));
        // Per-item only when items are attributable.
        let with = s.derived_kv(Some(5));
        assert_eq!(with[0], ("llc_misses_per_item", Some(2.0)));
        let without = s.derived_kv(None);
        assert!(without.iter().all(|&(k, _)| k != "llc_misses_per_item"));
    }

    #[test]
    fn to_json_covers_events_and_gates_per_item() {
        let s = sample(&[(CounterKind::LlcMisses, 10)]);
        let v = s.to_json(Some(5));
        assert_eq!(v["llc_misses"].as_u64(), Some(10));
        assert!(v["cycles"].is_null());
        assert_eq!(v["llc_misses_per_item"].as_f64(), Some(2.0));
        assert_eq!(v["multiplexed"].as_bool(), Some(false));
        // Without an item denominator the key is absent, not null.
        let w = s.to_json(None);
        let serde_json::Value::Object(pairs) = &w else {
            panic!("object expected");
        };
        assert!(pairs.iter().all(|(k, _)| k != "llc_misses_per_item"));
    }

    #[test]
    fn builder_dedups_and_names_are_stable() {
        let b = CounterBuilder::new()
            .counter(CounterKind::Cycles)
            .counter(CounterKind::Cycles)
            .counter(CounterKind::LlcMisses);
        assert_eq!(b.kinds().len(), 2);
        assert_eq!(CounterBuilder::cache_suite().kinds(), &CounterKind::ALL);
        assert_eq!(CounterKind::LlcMisses.name(), "llc-misses");
        assert_eq!(CounterKind::TaskClock.name(), "task-clock");
    }

    #[test]
    fn env_kill_switch_policy() {
        assert!(env_disable_reason(Some("1")).is_some());
        assert!(env_disable_reason(Some("yes")).is_some());
        assert!(env_disable_reason(Some("0")).is_none());
        assert!(env_disable_reason(Some("")).is_none());
        assert!(env_disable_reason(None).is_none());
    }

    #[test]
    fn empty_builder_is_cleanly_unavailable() {
        let set = CounterBuilder::new().open_self_thread();
        assert!(!set.is_active());
        assert!(set.reason().is_some());
        assert_eq!(set.sample(), None);
        assert!(set.kinds().is_empty());
        // No-ops, not panics.
        set.enable();
        set.disable();
        set.reset();
    }

    #[test]
    fn open_never_panics_and_probe_is_consistent() {
        // Whether or not this environment permits counters, the call
        // must return a usable CounterSet.
        let set = CounterBuilder::cache_suite().open_self_thread();
        match &set {
            CounterSet::Active(g) => assert!(!g.kinds().is_empty()),
            CounterSet::Unavailable { reason } => assert!(!reason.is_empty()),
        }
        let p = probe();
        assert_eq!(p.available, p.reason.is_none());
        assert_eq!(p.available, !p.events.is_empty());
    }
}
