//! The arithmetic half of the counter subsystem: parsing
//! `read_format=GROUP` buffers and undoing multiplexing — pure `u64`
//! math, unit-testable on any platform against synthetic buffers.

/// One decoded `read(2)` of a counter group opened with
/// `PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING`:
///
/// ```text
/// u64 nr;            // events in the group
/// u64 time_enabled;  // ns the group was enabled
/// u64 time_running;  // ns it was actually on the PMU
/// u64 value[nr];     // raw counts, in group-open order
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupRead {
    /// Nanoseconds the group was enabled.
    pub time_enabled: u64,
    /// Nanoseconds the group was scheduled on the PMU. Less than
    /// `time_enabled` means the kernel multiplexed the group with other
    /// users of the same counters.
    pub time_running: u64,
    /// Raw counter values, in the order the events were opened
    /// (leader first).
    pub values: Vec<u64>,
}

impl GroupRead {
    /// Whether the kernel time-sliced this group (readings are then
    /// extrapolated estimates, not exact counts).
    pub fn multiplexed(&self) -> bool {
        self.time_running < self.time_enabled
    }
}

/// Decode a group read from `u64` words. `None` if the buffer is too
/// short for its own claimed event count (a truncated `read(2)`).
pub fn parse_group_read(words: &[u64]) -> Option<GroupRead> {
    let nr = usize::try_from(*words.first()?).ok()?;
    let values = words.get(3..3 + nr)?.to_vec();
    Some(GroupRead {
        time_enabled: words[1],
        time_running: words[2],
        values,
    })
}

/// Undo multiplexing: extrapolate a raw count over the time the group
/// was enabled but not running, `raw · enabled / running` in 128-bit
/// intermediate precision. A group that never ran scales to 0 (there is
/// nothing to extrapolate from); one that ran whenever enabled returns
/// `raw` exactly.
pub fn scale(raw: u64, time_enabled: u64, time_running: u64) -> u64 {
    if time_running == 0 {
        0
    } else if time_running >= time_enabled {
        raw
    } else {
        u64::try_from(u128::from(raw) * u128::from(time_enabled) / u128::from(time_running))
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_synthetic_group_buffer() {
        let buf = [3u64, 2_000, 1_000, 10, 20, 30];
        let r = parse_group_read(&buf).unwrap();
        assert_eq!(r.time_enabled, 2_000);
        assert_eq!(r.time_running, 1_000);
        assert_eq!(r.values, vec![10, 20, 30]);
        assert!(r.multiplexed());
    }

    #[test]
    fn parse_tolerates_trailing_words_but_not_truncation() {
        // Kernel may hand back exactly nr values; extra capacity in the
        // caller's buffer is ignored.
        let buf = [1u64, 5, 5, 42, 999, 999];
        assert_eq!(parse_group_read(&buf).unwrap().values, vec![42]);
        // Truncated: claims 4 events, provides 2.
        assert_eq!(parse_group_read(&[4, 5, 5, 1, 2]), None);
        assert_eq!(parse_group_read(&[]), None);
        // Zero events is well-formed (an empty group read).
        let r = parse_group_read(&[0, 7, 7]).unwrap();
        assert!(r.values.is_empty());
        assert!(!r.multiplexed());
    }

    #[test]
    fn scaling_extrapolates_multiplexed_counts() {
        // Ran half the enabled time: double the count.
        assert_eq!(scale(100, 2_000, 1_000), 200);
        // Ran the whole time: exact.
        assert_eq!(scale(100, 1_000, 1_000), 100);
        // Kernel clock skew can report running > enabled; never shrink.
        assert_eq!(scale(100, 1_000, 1_500), 100);
        // Never scheduled: no information, report 0.
        assert_eq!(scale(100, 1_000, 0), 0);
        // Nothing counted stays nothing.
        assert_eq!(scale(0, 9_999, 3), 0);
    }

    #[test]
    fn scaling_is_overflow_safe() {
        // raw · enabled would overflow u64; 128-bit math keeps the
        // quotient exact.
        let raw = u64::MAX / 2;
        let scaled = scale(raw, 4_000_000_000, 1_000_000_000);
        assert_eq!(scaled, u64::MAX); // saturates at the type ceiling
        assert_eq!(scale(1 << 40, 3_000, 1_000), 3 << 40);
    }
}
