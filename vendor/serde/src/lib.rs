//! Offline shim of `serde`, vendored because the build environment has
//! no network access.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! single JSON-shaped [`Value`]: `Serialize` renders to a `Value`,
//! `Deserialize` reads from one, and the derive macros (re-exported from
//! the vendored `serde_derive`) generate those impls for plain structs.
//! `serde_json` (also vendored) handles text.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Any integer (both signed and unsigned sources).
    Int(i128),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Look up an object field (used by derived `Deserialize`).
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Look up an array element (used by derived `Deserialize`).
    pub fn index(&self, i: usize) -> Result<&Value, DeError> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| DeError(format!("missing element {i}"))),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Render `self` as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(DeError(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}
impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(DeError(format!("expected integer, got {other:?}"))),
        }
    }
}
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(i128::try_from(*self).expect("u128 fits shim i128"))
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => {
                u128::try_from(*i).map_err(|_| DeError(format!("integer {i} negative")))
            }
            other => Err(DeError(format!("expected integer, got {other:?}"))),
        }
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}
