//! Offline shim of `proptest`, vendored because the build environment
//! has no network access.
//!
//! Provides the macro surface this workspace uses — `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! `ProptestConfig::with_cases`, and `prop::collection::vec` — backed by
//! plain deterministic random sampling (no shrinking): each test runs
//! its body for `cases` inputs drawn from the argument strategies, with
//! a seed derived from the test name so failures reproduce.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Test-case budget. Only `cases` is supported.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeded from the test name (FNV-1a), so every run of a given test
    /// sees the same case sequence.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }
}

/// A value generator. No shrinking: `sample` draws one value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Vec strategy with a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.inner.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The `prop::` module path used by `proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg =
                    $crate::Strategy::sample(&($strat), &mut __rng);)+
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

/// Assertion macros: plain assertions (a failure aborts the test; there
/// is no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4, "y = {y}");
        }

        fn vectors_sized(v in prop::collection::vec(0u32..5, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        fn tuples_and_assume(pair in (0u8..2, 1usize..6)) {
            prop_assume!(pair.0 == 1);
            prop_assert_eq!(pair.0, 1);
            prop_assert!(pair.1 >= 1);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::sample(&s, &mut a),
                crate::Strategy::sample(&s, &mut b)
            );
        }
    }
}
