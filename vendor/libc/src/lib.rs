//! Offline shim of `libc`, vendored because the build environment has no
//! network access: only the CPU-affinity entry points `ccs-topo` uses.
//!
//! On Linux, Rust's `std` already links the platform C library, so these
//! `extern "C"` declarations bind to the real glibc/musl symbols at link
//! time — no new link flags needed. The mask is passed as `*const u64`
//! words rather than a `cpu_set_t` struct; the kernel ABI is just a bit
//! array, so the representations agree for any `cpusetsize` that is a
//! multiple of 8.
//!
//! Off Linux the module is empty and callers must compile the calls out
//! (`ccs-topo::bind` degrades to a no-op).

#![allow(non_camel_case_types)]

pub type pid_t = i32;

#[cfg(target_os = "linux")]
extern "C" {
    /// Restrict thread `pid` (0 = calling thread) to the CPUs set in
    /// `mask`, a bit array of `cpusetsize` bytes. Returns 0 on success.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: usize, mask: *const u64) -> i32;

    /// Read the affinity mask of thread `pid` (0 = calling thread) into
    /// `mask`. Returns 0 on success.
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: usize, mask: *mut u64) -> i32;
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    #[test]
    fn getaffinity_reports_at_least_one_cpu() {
        let mut mask = [0u64; 16];
        let rc = unsafe { super::sched_getaffinity(0, 16 * 8, mask.as_mut_ptr()) };
        assert_eq!(rc, 0);
        assert!(mask.iter().any(|&w| w != 0), "no CPU allowed?");
    }
}
