//! Offline shim of `libc`, vendored because the build environment has no
//! network access: only the entry points this workspace uses — the
//! CPU-affinity calls behind `ccs-topo` and the `perf_event_open`
//! surface behind `ccs-perf`.
//!
//! On Linux, Rust's `std` already links the platform C library, so these
//! `extern "C"` declarations bind to the real glibc/musl symbols at link
//! time — no new link flags needed. Everything Linux-specific lives in
//! one `linux` module behind a single `cfg(target_os = "linux")` gate;
//! off Linux the crate exports only the portable type aliases and
//! callers must compile the calls out (`ccs-topo::bind` and
//! `ccs-perf` both degrade to graceful no-ops).
//!
//! Deliberate shim-isms (documented in `vendor/README.md`):
//!
//! * The affinity mask is passed as `*const u64` words rather than a
//!   `cpu_set_t` struct; the kernel ABI is just a bit array, so the
//!   representations agree for any `cpusetsize` that is a multiple
//!   of 8.
//! * `perf_event_attr` carries its flag bitfield as one plain `u64`
//!   (`flags`) with `PERF_ATTR_FLAG_*` masks instead of real libc's
//!   generated bitfield accessors, and only spans the fields this
//!   workspace sets (ABI version 1, 72 bytes — the kernel copies
//!   exactly `size` bytes, so the short struct is valid on every
//!   kernel since 3.0).

#![allow(non_camel_case_types)]
// `SYS_perf_event_open` keeps real libc's casing.
#![allow(non_upper_case_globals)]

pub type pid_t = i32;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;

#[cfg(target_os = "linux")]
mod linux {
    use super::*;

    extern "C" {
        /// Restrict thread `pid` (0 = calling thread) to the CPUs set in
        /// `mask`, a bit array of `cpusetsize` bytes. Returns 0 on success.
        pub fn sched_setaffinity(pid: pid_t, cpusetsize: usize, mask: *const u64) -> c_int;

        /// Read the affinity mask of thread `pid` (0 = calling thread) into
        /// `mask`. Returns 0 on success.
        pub fn sched_getaffinity(pid: pid_t, cpusetsize: usize, mask: *mut u64) -> c_int;

        /// Raw indirect syscall — the only way to reach
        /// `perf_event_open`, which glibc never wrapped.
        pub fn syscall(num: c_long, ...) -> c_long;

        /// Device control; perf fds use it for enable/disable/reset.
        pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;

        /// Read up to `count` bytes from `fd` (perf group reads).
        pub fn read(fd: c_int, buf: *mut u8, count: size_t) -> ssize_t;

        /// Close a file descriptor.
        pub fn close(fd: c_int) -> c_int;
    }

    /// `__NR_perf_event_open` for the architectures this repo targets.
    #[cfg(target_arch = "x86_64")]
    pub const SYS_perf_event_open: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_perf_event_open: c_long = 241;
    #[cfg(target_arch = "riscv64")]
    pub const SYS_perf_event_open: c_long = 241;
    #[cfg(not(any(
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "riscv64"
    )))]
    pub const SYS_perf_event_open: c_long = -1; // unknown arch: callers get ENOSYS

    /// `struct perf_event_attr`, ABI version 1 (fields through
    /// `bp_len`/`config2`, 72 bytes). The kernel validates against the
    /// `size` field, so omitting later fields is forward- and
    /// backward-compatible.
    #[repr(C)]
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct perf_event_attr {
        /// Major event type (`PERF_TYPE_*`).
        pub type_: u32,
        /// Size of this struct as the kernel should read it
        /// (`PERF_ATTR_SIZE_VER1`).
        pub size: u32,
        /// Type-specific event id (`PERF_COUNT_*` or a cache-event code).
        pub config: u64,
        /// `sample_period`/`sample_freq` union — zero for counting mode.
        pub sample_period_or_freq: u64,
        /// `PERF_SAMPLE_*` — zero for counting mode.
        pub sample_type: u64,
        /// `PERF_FORMAT_*` bits governing what `read(2)` returns.
        pub read_format: u64,
        /// The attr bitfield word (`PERF_ATTR_FLAG_*` masks).
        pub flags: u64,
        /// `wakeup_events`/`wakeup_watermark` union — unused here.
        pub wakeup: u32,
        /// Breakpoint type — unused here.
        pub bp_type: u32,
        /// `bp_addr`/`config1` union — unused here.
        pub config1: u64,
        /// `bp_len`/`config2` union — unused here.
        pub config2: u64,
    }

    /// `sizeof(struct perf_event_attr)` at ABI version 1.
    pub const PERF_ATTR_SIZE_VER1: u32 = 72;

    // --- perf_event_attr.type ---
    pub const PERF_TYPE_HARDWARE: u32 = 0;
    pub const PERF_TYPE_SOFTWARE: u32 = 1;
    pub const PERF_TYPE_HW_CACHE: u32 = 3;

    // --- PERF_TYPE_HARDWARE configs ---
    pub const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    pub const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
    pub const PERF_COUNT_HW_CACHE_REFERENCES: u64 = 2;
    pub const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;

    // --- PERF_TYPE_SOFTWARE configs ---
    pub const PERF_COUNT_SW_TASK_CLOCK: u64 = 1;

    // --- PERF_TYPE_HW_CACHE config building blocks:
    //     config = id | (op << 8) | (result << 16) ---
    pub const PERF_COUNT_HW_CACHE_LL: u64 = 2;
    pub const PERF_COUNT_HW_CACHE_OP_READ: u64 = 0;
    pub const PERF_COUNT_HW_CACHE_RESULT_ACCESS: u64 = 0;
    pub const PERF_COUNT_HW_CACHE_RESULT_MISS: u64 = 1;

    // --- attr flag bitfield masks (bit positions from the kernel's
    //     perf_event_attr bitfield; real libc exposes these as generated
    //     accessors, this shim as one word) ---
    pub const PERF_ATTR_FLAG_DISABLED: u64 = 1 << 0;
    pub const PERF_ATTR_FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    pub const PERF_ATTR_FLAG_EXCLUDE_HV: u64 = 1 << 6;

    // --- read_format bits ---
    pub const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    pub const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    pub const PERF_FORMAT_GROUP: u64 = 1 << 3;

    // --- perf_event_open(2) flags ---
    pub const PERF_FLAG_FD_CLOEXEC: c_ulong = 1 << 3;

    // --- perf fd ioctls (`_IO('$', n)`: type 0x24 << 8 | n) ---
    pub const PERF_EVENT_IOC_ENABLE: c_ulong = 0x2400;
    pub const PERF_EVENT_IOC_DISABLE: c_ulong = 0x2401;
    pub const PERF_EVENT_IOC_RESET: c_ulong = 0x2403;

    /// `ioctl` arg selecting the whole group instead of one event.
    pub const PERF_IOC_FLAG_GROUP: c_ulong = 1;
}

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    #[test]
    fn getaffinity_reports_at_least_one_cpu() {
        let mut mask = [0u64; 16];
        let rc = unsafe { super::sched_getaffinity(0, 16 * 8, mask.as_mut_ptr()) };
        assert_eq!(rc, 0);
        assert!(mask.iter().any(|&w| w != 0), "no CPU allowed?");
    }

    #[test]
    fn perf_event_attr_matches_abi_version_1() {
        assert_eq!(
            std::mem::size_of::<super::perf_event_attr>(),
            super::PERF_ATTR_SIZE_VER1 as usize
        );
        // Field offsets match the kernel header: config at 8, the
        // bitfield word right after read_format at 40, the breakpoint
        // unions closing out VER0/VER1.
        assert_eq!(std::mem::offset_of!(super::perf_event_attr, config), 8);
        assert_eq!(
            std::mem::offset_of!(super::perf_event_attr, read_format),
            32
        );
        assert_eq!(std::mem::offset_of!(super::perf_event_attr, flags), 40);
        assert_eq!(std::mem::offset_of!(super::perf_event_attr, config1), 56);
    }
}
