//! Offline shim of `criterion`, vendored because the build environment
//! has no network access. Benches compile and run with real (median)
//! timing, but without criterion's statistics, plots, or baselines —
//! enough to compare hot paths locally and to keep `cargo bench`
//! targets building in CI.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Time `f`, reporting the median of `samples` runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), b.median);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.median);
        self
    }

    fn report(&self, id: &str, median: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !median.is_zero() => {
                format!("  {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if !median.is_zero() => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{id}: median {median:?}{rate}", self.name);
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples;
        let mut b = Bencher {
            samples,
            median: Duration::ZERO,
        };
        f(&mut b);
        println!("{id}: median {:?}", b.median);
        self
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3).throughput(Throughput::Elements(100));
        let mut ran = 0;
        g.bench_function("inc", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("sum", 8), &vec![1u64; 8], |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
        assert!(ran >= 3);
    }
}
