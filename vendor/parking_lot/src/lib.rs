//! Offline shim of `parking_lot`, vendored because the build
//! environment has no network access: the `Mutex` and `Condvar` APIs
//! (no lock poisoning, `lock()` returns the guard directly, `wait`
//! takes the guard by `&mut`) over their `std::sync` counterparts.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard wrapping `std`'s so [`Condvar::wait`] can take it by `&mut`
/// (parking_lot's signature) while `std`'s `wait` consumes it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock; like parking_lot, poisoning does not exist
    /// (a poisoned std mutex just yields its data).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// parking_lot-shaped condition variable over `std::sync::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting. Spurious
    /// wakeups are possible (as in parking_lot); callers must re-check
    /// their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn wait_for_times_out_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
