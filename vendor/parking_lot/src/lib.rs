//! Offline shim of `parking_lot`, vendored because the build
//! environment has no network access: the `Mutex` API (no lock
//! poisoning, `lock()` returns the guard directly) over
//! `std::sync::Mutex`.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock; like parking_lot, poisoning does not exist
    /// (a poisoned std mutex just yields its data).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }
}
