//! Offline shim of `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for plain structs (named fields or tuple structs), targeting the
//! vendored `serde` crate's `Value` data model.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access; this derive handles exactly the
//! shapes the workspace uses (non-generic structs) and fails loudly on
//! anything else.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Parse `[attrs] [pub] struct Name { fields }` or
/// `[attrs] [pub] struct Name(types);`.
fn parse_struct(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(n)) => {
                    name = Some(n.to_string());
                    break;
                }
                other => return Err(format!("expected struct name, got {other:?}")),
            },
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("serde shim: derive on enums is not supported".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or("no `struct` keyword found")?;
    // Generics unsupported: next token must be a body group.
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
            name,
            shape: Shape::Named(named_fields(g.stream())?),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Parsed {
            name,
            shape: Shape::Tuple(count_tuple_fields(g.stream())),
        }),
        other => Err(format!(
            "serde shim: unsupported struct shape after `{name}`: {other:?}"
        )),
    }
}

/// Field names of a named-field body: skip attributes and visibility,
/// take the ident before `:`, then consume the type up to a top-level
/// comma (angle-bracket depth tracked so `Vec<(A, B)>` splits right).
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes `#[...]` and `pub` / `pub(...)`.
        loop {
            match iter.peek() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        iter.next(); // pub(crate) etc.
                    }
                }
                _ => break,
            }
        }
        let fname = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:`, got {other:?}")),
        }
        // Consume the type until a comma at angle depth 0.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        fields.push(fname);
    }
    Ok(fields)
}

/// Count tuple-struct fields: top-level commas at angle depth 0, plus one.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in body {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                commas += 1;
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{f}\"), \
                         serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                         __v.field(\"{f}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(__v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(__v.index({i})?)?"))
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) \
             -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}
