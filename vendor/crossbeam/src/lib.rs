//! Offline shim of `crossbeam`, vendored because the build environment
//! has no network access. `crossbeam::scope` maps onto
//! `std::thread::scope` (stable since Rust 1.63), and
//! `utils::CachePadded` is an alignment wrapper. Only the surface this
//! workspace uses is provided; spawned closures receive a placeholder
//! `&()` instead of a nested scope handle (no call site uses it).

use std::any::Any;

/// Scope handle passed to the closure given to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. The closure's argument is a
    /// placeholder (crossbeam passes a nested scope; no caller here
    /// uses it).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&())),
        }
    }
}

/// Create a scope for spawning threads that may borrow from the caller.
/// All spawned threads are joined before this returns. Unlike crossbeam,
/// a panic in an unjoined child propagates as a panic rather than an
/// `Err` (both fail tests identically).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod utils {
    /// Pads and aligns a value to 128 bytes to avoid false sharing.
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    7usize
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 28);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn cache_padded_is_aligned() {
        let p = super::utils::CachePadded::new(3u64);
        assert_eq!(*p, 3);
        assert_eq!((&p as *const _ as usize) % 128, 0);
        assert_eq!(p.into_inner(), 3);
    }
}
