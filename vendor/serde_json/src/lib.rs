//! Offline shim of `serde_json` over the vendored `serde` value model:
//! JSON printing (compact and pretty), a recursive-descent parser, and a
//! `json!` macro covering object/array/expression literals.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON error (parse or shape mismatch).
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(Error("bad escape".into()));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error("bad \\u".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u".into()))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).ok_or_else(|| Error("bad \\u".into()))?);
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0b1100_0000 == 0b1000_0000 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad float `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("bad integer `{text}`")))
        }
    }
}

/// Build a [`Value`] from a JSON-shaped literal: objects with
/// string-literal keys, arrays, `null`, and serializable expressions.
/// Unlike real `serde_json`, nested object literals must be wrapped in
/// their own `json!(...)` call.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $( $crate::to_value(&$item).expect("json! value serializes") ),*
        ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (
                String::from($key),
                $crate::to_value(&$val).expect("json! value serializes"),
            ) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_nesting() {
        let v = json!({
            "a": 1u64,
            "b": json!([1u64, 2u64, 3u64]),
            "c": json!({"d": "text", "e": 2.5f64}),
            "f": json!(null),
            "neg": -7i64,
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["a"].as_u64(), Some(1));
        assert_eq!(back["c"]["d"].as_str(), Some("text"));
        assert_eq!(back["c"]["e"].as_f64(), Some(2.5));
        assert!(back["f"].is_null());
        assert_eq!(back["neg"].as_i64(), Some(-7));
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"slash\\tab\tunicode\u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&4.0f64).unwrap();
        assert_eq!(text, "4.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.as_f64(), Some(4.0));
        assert!(matches!(back, Value::Float(_)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
