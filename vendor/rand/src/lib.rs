//! Offline shim of `rand` 0.8, vendored because the build environment
//! has no network access. Covers exactly the surface this workspace
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer ranges, and `Rng::gen_bool`. Deterministic by construction
//! (splitmix64), which is all the generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stream (full 2^64 period).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = SmallRng::seed_from_u64(7);
        let diff: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&x));
        }
        // Single-value inclusive range works.
        assert_eq!(r.gen_range(9u32..=9), 9);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "{heads}");
    }
}
